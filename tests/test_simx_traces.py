"""Tests for trace events, validation, and trace file I/O."""

import pytest

from repro.simx import (
    AllReduce,
    Barrier,
    Compute,
    ISend,
    Recv,
    Send,
    Trace,
    decode_event,
    dump_trace,
    load_trace,
    read_trace_files,
    validate_trace_set,
    write_trace_files,
)


class TestEvents:
    def test_compute_rounds_to_int_ns(self):
        assert Compute(1.6).ns == 2

    def test_compute_negative_rejected(self):
        with pytest.raises(ValueError):
            Compute(-1)

    def test_send_fields(self):
        s = Send(3, 1024, "halo")
        assert (s.dst, s.size, s.tag, s.kind) == (3, 1024, "halo", "send")

    def test_isend_kind(self):
        assert ISend(1, 10).kind == "isend"
        assert ISend(1, 10).blocking is False

    def test_encode_decode_round_trip(self):
        events = [
            Compute(123456789),
            Send(1, 4096, "a"),
            ISend(2, 99, "b"),
            Recv(0, "a"),
            Barrier(),
            AllReduce(8),
        ]
        for e in events:
            assert decode_event(e.encode()) == e

    def test_decode_malformed(self):
        with pytest.raises(ValueError):
            decode_event("send 1")
        with pytest.raises(ValueError):
            decode_event("frobnicate 1 2")
        with pytest.raises(ValueError):
            decode_event("")

    def test_trace_aggregates(self):
        t = Trace(rank=0, nprocs=1)
        t.append(Compute(100))
        t.append(Compute(200))
        t.append(ISend(0, 50))
        assert t.total_compute_ns == 300
        assert t.total_bytes_sent == 50
        assert t.count("compute") == 2
        assert len(t) == 3


class TestValidation:
    def _pair(self):
        t0 = Trace(rank=0, nprocs=2, events=[Send(1, 10, "x")])
        t1 = Trace(rank=1, nprocs=2, events=[Recv(0, "x")])
        return [t0, t1]

    def test_valid_pair_passes(self):
        validate_trace_set(self._pair())

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            validate_trace_set([])

    def test_noncontiguous_ranks(self):
        t0 = Trace(rank=0, nprocs=2)
        t2 = Trace(rank=2, nprocs=2)
        with pytest.raises(ValueError, match="contiguous"):
            validate_trace_set([t0, t2])

    def test_nprocs_mismatch(self):
        t0 = Trace(rank=0, nprocs=3)
        t1 = Trace(rank=1, nprocs=2)
        with pytest.raises(ValueError, match="nprocs"):
            validate_trace_set([t0, t1])

    def test_unmatched_send(self):
        t0 = Trace(rank=0, nprocs=2, events=[Send(1, 10, "x")])
        t1 = Trace(rank=1, nprocs=2)
        with pytest.raises(ValueError, match="unmatched"):
            validate_trace_set([t0, t1])

    def test_send_to_invalid_rank(self):
        t0 = Trace(rank=0, nprocs=2, events=[Send(7, 10)])
        t1 = Trace(rank=1, nprocs=2)
        with pytest.raises(ValueError, match="bad rank"):
            validate_trace_set([t0, t1])

    def test_barrier_count_mismatch(self):
        t0 = Trace(rank=0, nprocs=2, events=[Barrier()])
        t1 = Trace(rank=1, nprocs=2)
        with pytest.raises(ValueError, match="barrier"):
            validate_trace_set([t0, t1])

    def test_allreduce_count_mismatch(self):
        t0 = Trace(rank=0, nprocs=2, events=[AllReduce(8)])
        t1 = Trace(rank=1, nprocs=2)
        with pytest.raises(ValueError, match="allreduce"):
            validate_trace_set([t0, t1])


class TestTraceFiles:
    def _trace(self):
        return Trace(
            rank=1,
            nprocs=4,
            events=[Compute(42), ISend(0, 8, "t"), Recv(2, "u"), Barrier()],
            app="obstacle",
            meta={"opt_level": "O3", "grid": "64"},
        )

    def test_dump_load_round_trip(self):
        t = self._trace()
        t2 = load_trace(dump_trace(t))
        assert t2.rank == t.rank
        assert t2.nprocs == t.nprocs
        assert t2.app == t.app
        assert t2.events == t.events
        assert t2.meta == t.meta

    def test_load_missing_magic(self):
        with pytest.raises(ValueError, match="magic"):
            load_trace("compute 12\n")

    def test_load_missing_rank(self):
        with pytest.raises(ValueError, match="rank"):
            load_trace("# dperf-trace v1\ncompute 12\n")

    def test_write_read_files(self, tmp_path):
        traces = [
            Trace(rank=r, nprocs=3, events=[Compute(r * 10 + 1)], app="demo")
            for r in range(3)
        ]
        paths = write_trace_files(traces, tmp_path)
        assert len(paths) == 3
        assert all(p.exists() for p in paths)
        loaded = read_trace_files(tmp_path, "demo")
        assert [t.rank for t in loaded] == [0, 1, 2]
        assert loaded[2].events == [Compute(21)]

    def test_read_missing_app(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_trace_files(tmp_path, "ghost")
