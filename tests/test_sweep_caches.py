"""The sweep cache stack: atomic writes, cache union, trace cache.

Concurrent shards share one cache directory, so every on-disk write
in the stack (results, manifests, traces) must be
tempfile-then-``os.replace`` atomic: a reader racing a writer sees
the old complete file or the new complete file, never a torn one.
"""

import json
import os

import pytest

from repro.scenarios import ResultCache, ScenarioSpec, run_scenario
from repro.scenarios.runner import atomic_write_text
from repro.scenarios.spec import PlatformPlan, WorkloadPlan
from repro.scenarios import workloads


def _spec(**over):
    over.setdefault("platform", PlatformPlan(kind="cluster", n_hosts=8))
    over.setdefault("n_peers", 4)
    return ScenarioSpec(name="cache-probe", kind="deploy", **over)


class TestAtomicWrites:
    def test_put_is_atomic_under_interrupted_replace(self, tmp_path,
                                                     monkeypatch):
        """A writer dying mid-put must leave the previous entry intact
        and no temp litter — the torn-JSON scenario of two shards on
        one cache directory."""
        cache = ResultCache(tmp_path)
        spec = _spec()
        result = run_scenario(spec)
        cache.put(spec, result)
        before = cache._path(spec.spec_hash()).read_text()

        real_replace = os.replace

        def dying_replace(src, dst):
            raise OSError("simulated crash mid-replace")

        monkeypatch.setattr(os, "replace", dying_replace)
        with pytest.raises(OSError):
            cache.put(spec, result)
        monkeypatch.setattr(os, "replace", real_replace)
        # old entry untouched, readable, and no .tmp residue
        assert cache._path(spec.spec_hash()).read_text() == before
        assert cache.get(spec) is not None
        assert list(tmp_path.glob("*.tmp")) == []

    def test_atomic_write_text_replaces_whole_file(self, tmp_path):
        path = tmp_path / "m.json"
        atomic_write_text(path, "first")
        atomic_write_text(path, "second-longer-content")
        assert path.read_text() == "second-longer-content"
        assert list(tmp_path.glob("*.tmp")) == []

    def test_torn_cache_entry_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec()
        cache._path(spec.spec_hash()).write_text('{"spec": {"trunc')
        assert cache.get(spec) is None  # miss, not a crash


class TestAbsorb:
    def test_union_is_a_file_copy(self, tmp_path):
        a, b = ResultCache(tmp_path / "a"), ResultCache(tmp_path / "b")
        spec_a, spec_b = _spec(seed=1), _spec(seed=2)
        a.put(spec_a, run_scenario(spec_a))
        b.put(spec_b, run_scenario(spec_b))
        copied = a.absorb(b.root)
        assert copied == 1
        assert a.get(spec_b) is not None
        # idempotent: existing entries are kept, not rewritten
        assert a.absorb(b.root) == 0

    def test_absorb_missing_dir_is_noop(self, tmp_path):
        assert ResultCache(tmp_path / "a").absorb(tmp_path / "nope") == 0


class TestTraceCache:
    @pytest.fixture(autouse=True)
    def _restore(self):
        yield
        workloads.set_trace_cache_dir(None)

    def test_disk_roundtrip_preserves_reference_results(self, tmp_path):
        """The pickled-trace path must be invisible: a reference run
        from disk-loaded traces is byte-identical to the computed one."""
        spec = ScenarioSpec(
            name="trace-probe", kind="reference",
            platform=PlatformPlan(kind="cluster", n_hosts=8),
            workload=WorkloadPlan(app="heat", n=64, nit=20, level="O1"),
            n_peers=2,
        )
        workloads.set_trace_cache_dir(tmp_path)
        workloads.clear_caches()
        computed = run_scenario(spec)  # computes, stores to disk
        assert list(tmp_path.glob("*.trace.pkl"))
        workloads.clear_caches()  # force the disk-load path
        loaded = run_scenario(spec)
        assert loaded.canonical_json() == computed.canonical_json()

    def test_torn_trace_entry_recomputes(self, tmp_path):
        workloads.set_trace_cache_dir(tmp_path)
        key = workloads._trace_key("heat", 2, "O1", 64, 20)
        (tmp_path / f"{key}.trace.pkl").write_bytes(b"torn pickle")
        workloads.clear_caches()
        assert workloads.traces("heat", 2, "O1", 64, 20)  # recomputed

    def test_disabled_cache_writes_nothing(self, tmp_path):
        workloads.set_trace_cache_dir(None)
        workloads.clear_caches()
        workloads.traces("heat", 2, "O1", 64, 20)
        assert not list(tmp_path.iterdir())


class TestDeployTemplateCache:
    def test_same_shape_shares_one_template(self):
        from repro.scenarios.runner import _deploy_template

        a = _deploy_template(_spec(seed=1, selection_policy="random"))
        b = _deploy_template(_spec(seed=2, selection_policy="proximity"))
        assert a is b  # churn/policy/seed axes share the deployment shape

    def test_different_shape_gets_its_own_template(self):
        from repro.scenarios.runner import _deploy_template

        a = _deploy_template(_spec())
        b = _deploy_template(_spec(n_peers=6))
        c = _deploy_template(
            _spec(platform=PlatformPlan(kind="cluster", n_hosts=16)))
        assert a is not b and a is not c

    def test_template_reuse_is_invisible_to_results(self):
        # two runs of one spec through the shared template: identical
        spec = _spec(seed=7)
        first = run_scenario(spec)
        second = run_scenario(spec)
        assert first.canonical_json() == second.canonical_json()


class TestReadErrorTaxonomy:
    """``JsonCache.load``'s error discipline: a missing or torn entry
    is a legitimate miss (concurrent writers produce those), but an
    *environmental* read error (permissions, I/O, a directory where a
    file should be) is counted, logged once per path, and re-raised on
    the second consecutive failure of the same entry — silent
    recompute storms must not masquerade as cache misses."""

    def _entry_as_directory(self, cache, spec):
        """Turn the entry into a directory: ``read_text`` then raises
        IsADirectoryError — an OSError that is *not* FileNotFoundError
        (chmod tricks don't work for root, which CI runs as)."""
        path = cache._path(spec.spec_hash())
        path.unlink()
        path.mkdir()
        return path

    def test_missing_entry_is_a_silent_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        for _ in range(3):
            assert cache.get(_spec()) is None
        assert cache.cache_read_errors == 0

    def test_torn_entry_is_a_silent_miss_forever(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec()
        cache._path(spec.spec_hash()).write_text('{"torn": ')
        for _ in range(3):
            assert cache.get(spec) is None  # never escalates
        assert cache.cache_read_errors == 0

    def test_env_error_counts_then_reraises_on_second_failure(
            self, tmp_path, caplog):
        cache = ResultCache(tmp_path)
        spec = _spec()
        cache.put(spec, run_scenario(spec))
        self._entry_as_directory(cache, spec)
        with caplog.at_level("WARNING", logger="repro.scenarios.cache"):
            assert cache.get(spec) is None  # first failure: a miss
        assert cache.cache_read_errors == 1
        assert len(caplog.records) == 1
        assert "treating as a miss" in caplog.records[0].getMessage()
        with caplog.at_level("WARNING", logger="repro.scenarios.cache"):
            with pytest.raises(OSError):
                cache.get(spec)  # second consecutive failure: raise
        assert cache.cache_read_errors == 2
        # the path is logged once, not once per failure
        assert len(caplog.records) == 1

    def test_successful_read_resets_the_failure_streak(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec()
        result = run_scenario(spec)
        cache.put(spec, result)
        path = self._entry_as_directory(cache, spec)
        assert cache.get(spec) is None
        assert cache.cache_read_errors == 1
        # the entry heals (the flaky-mount scenario): a good read
        # resets the streak, so the next failure is "first" again
        path.rmdir()
        cache.put(spec, result)
        assert cache.get(spec) is not None
        self._entry_as_directory(cache, spec)
        assert cache.get(spec) is None  # a miss again, not a raise
        assert cache.cache_read_errors == 2
