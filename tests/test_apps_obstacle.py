"""Workload validation: the mini-C obstacle/heat codes against numpy."""

import numpy as np
import pytest

from repro.apps import (
    contact_region_fraction,
    heat,
    obstacle,
    psi_grid,
    solve_heat_numpy,
    solve_obstacle_numpy,
)
from repro.dperf import DPerfPredictor, run_distributed, run_single
from repro.dperf.minic import check, parse


class TestNumpyReference:
    def test_solution_nonnegative_and_bounded(self):
        u, _res = solve_obstacle_numpy(24, 200)
        assert np.all(u >= -1e-12)
        assert np.max(u) < 2.0

    def test_solution_respects_obstacle(self):
        u, _res = solve_obstacle_numpy(24, 400)
        psi = psi_grid(24)
        assert np.all(u[1:-1, 1:-1] >= psi[1:-1, 1:-1] - 1e-12)

    def test_contact_region_nonempty(self):
        """The obstacle must actually bind (otherwise it's just Poisson)."""
        u, _res = solve_obstacle_numpy(24, 600)
        assert contact_region_fraction(u, 24) > 0.05

    def test_residuals_decrease(self):
        _u, res = solve_obstacle_numpy(16, 100)
        assert res[-1] < res[0]
        assert res[-1] < 1e-2

    def test_boundary_stays_zero(self):
        u, _res = solve_obstacle_numpy(16, 50)
        assert np.all(u[0, :] == 0) and np.all(u[-1, :] == 0)
        assert np.all(u[:, 0] == 0) and np.all(u[:, -1] == 0)


class TestMiniCMatchesNumpy:
    def test_source_parses_and_checks(self):
        check(parse(obstacle.obstacle_source()))

    @pytest.mark.parametrize("nranks", [1, 2, 4])
    def test_distributed_residual_matches_numpy_exactly(self, nranks):
        """The distributed interpreter run must reproduce the sequential
        numpy residual bit-for-bit (same FP operations per element)."""
        n, nit = 12, 8
        runs = run_distributed(
            parse(obstacle.obstacle_source()), obstacle.ENTRY, nranks,
            args=[n, nit, 4],
        )
        _u, residuals = solve_obstacle_numpy(n, nit)
        # the last allreduce happens at iteration 8 → global residual of it=7
        for run in runs:
            assert run.value == pytest.approx(residuals[nit - 1], abs=0.0)

    def test_single_rank_equals_multi_rank(self):
        n, nit = 12, 6
        one = run_distributed(parse(obstacle.obstacle_source()),
                              obstacle.ENTRY, 1, args=[n, nit, 3])
        three = run_distributed(parse(obstacle.obstacle_source()),
                                obstacle.ENTRY, 3, args=[n, nit, 3])
        assert one[0].value == three[0].value

    def test_scale_env_validates_divisibility(self):
        with pytest.raises(ValueError, match="divisible"):
            obstacle.scale_env(10, 3)
        env = obstacle.scale_env(12, 3)
        assert env["rows"] == 4.0

    def test_residual_model_decays(self):
        model = obstacle.residual_model(16)
        assert model(50) < model(5) < model(0)
        assert model(500) < model(100)  # extrapolated tail keeps decaying


class TestHeat:
    def test_source_parses_and_checks(self):
        check(parse(heat.heat_source()))

    @pytest.mark.parametrize("nranks", [1, 2, 4])
    def test_distributed_matches_numpy(self, nranks):
        n, nit = 16, 12
        runs = run_distributed(parse(heat.heat_source()), heat.ENTRY,
                               nranks, args=[n, nit])
        ref = solve_heat_numpy(n, nit)
        total = sum(run.value for run in runs)
        assert total == pytest.approx(float(np.sum(ref[1:-1])), rel=1e-12)

    def test_mpi_calls_recognized_by_static_analysis(self):
        from repro.dperf.minic import find_comm_calls

        sites = find_comm_calls(parse(heat.heat_source()))
        apis = {s.api for s in sites}
        assert "MPI_Isend" in apis and "MPI_Recv" in apis


class TestObstacleThroughDPerf:
    @pytest.fixture(scope="class")
    def predictor(self):
        return DPerfPredictor(obstacle.obstacle_source(), obstacle.ENTRY)

    def test_comm_pattern_in_traces(self, predictor):
        runs = predictor.execute(2, args=[8, 4, 2])
        traces = predictor.traces_for(runs, "O0", app="obstacle")
        from repro.simx import validate_trace_set

        validate_trace_set(traces)
        # interior exchange: each rank isends+recvs each iteration
        assert traces[0].count("isend") == 4
        assert traces[0].count("recv") == 4
        assert traces[0].count("allreduce") == 2

    def test_halo_message_size(self, predictor):
        runs = predictor.execute(2, args=[8, 2, 0])
        traces = predictor.traces_for(runs, "O0")
        from repro.simx import Send

        sizes = {e.size for e in traces[0].events if isinstance(e, Send)}
        assert sizes == {(8 + 2) * 8}

    def test_sweep_block_is_vectorizable(self, predictor):
        vec_blocks = [b for b in predictor.block_table if b.vectorizable]
        assert vec_blocks, "sweep body should be vectorizable at O3"

    def test_boundary_ranks_have_fewer_messages(self, predictor):
        runs = predictor.execute(4, args=[8, 2, 0])
        traces = predictor.traces_for(runs, "O0")
        interior = traces[1].count("isend")
        boundary = traces[0].count("isend")
        assert interior == 2 * boundary
