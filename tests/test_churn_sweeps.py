"""Churn-robustness sweeps: deterministic Poisson injection, completion
probability behaviour, and the engine contracts the churn grid rides on
(parallel ≡ serial, spec wiring for tcp/timers/time_limit).

The heavier tests reuse the registered ``churn-grid`` base spec, whose
(app, peers, level, n, nit) point matches the churn-under-load scenario
— the in-process calibration caches are shared, so one warm-up pays for
the file.
"""

import pytest

from repro.p2pdc import ChurnEvent, poisson_peer_failures
from repro.scenarios import SCENARIOS, SweepRunner, run_scenario
from repro.scenarios.runner import _deploy, clear_memo
from repro.scenarios.spec import (
    ChurnProfile,
    ScenarioSpec,
    TcpPlan,
    TimerPlan,
)


CHURN_GRID = SCENARIOS["churn-grid"]


def churn_point(rate: float, seed: int = 2011, **overrides) -> ScenarioSpec:
    spec = CHURN_GRID.base.with_override("churn_profile.rate", rate)
    spec = spec.with_override("seed", seed)
    for path, value in overrides.items():
        spec = spec.with_override(path.replace("__", "."), value)
    return spec


class TestPoissonInjection:
    TARGETS = tuple(f"p-{i}" for i in range(12))

    def test_same_inputs_same_schedule(self):
        a = poisson_peer_failures(0.5, self.TARGETS, seed=7, horizon=10.0)
        b = poisson_peer_failures(0.5, self.TARGETS, seed=7, horizon=10.0)
        assert a == b
        assert a, "rate 0.5 over 10s on 12 peers should draw something"

    def test_different_seed_different_schedule(self):
        a = poisson_peer_failures(0.5, self.TARGETS, seed=7, horizon=10.0)
        b = poisson_peer_failures(0.5, self.TARGETS, seed=8, horizon=10.0)
        assert a != b

    def test_schedule_shape(self):
        events = poisson_peer_failures(
            2.0, self.TARGETS, seed=3, start=1.0, horizon=5.0
        )
        times = [e.time for e in events]
        assert times == sorted(times)
        assert all(1.0 <= t < 6.0 for t in times)
        assert all(e.kind == "peer" for e in events)
        victims = [e.target for e in events]
        assert len(victims) == len(set(victims)), "a peer crashes once"
        assert set(victims) <= set(self.TARGETS)

    def test_rate_zero_is_empty(self):
        assert poisson_peer_failures(0.0, self.TARGETS, seed=1) == []
        assert poisson_peer_failures(1.0, (), seed=1) == []

    def test_max_failures_cap(self):
        events = poisson_peer_failures(
            50.0, self.TARGETS, seed=1, horizon=10.0, max_failures=3
        )
        assert len(events) == 3

    def test_mean_failure_count_tracks_rate(self):
        """Over many seeds the draw count approaches rate × horizon."""
        rate, horizon = 0.4, 10.0
        targets = tuple(f"p-{i}" for i in range(200))
        counts = [
            len(poisson_peer_failures(rate, targets, seed=s,
                                      horizon=horizon))
            for s in range(200)
        ]
        mean = sum(counts) / len(counts)
        assert mean == pytest.approx(rate * horizon, rel=0.25)


class TestChurnScenarioExecution:
    def test_profile_in_spec_hash(self):
        assert (churn_point(0.0).spec_hash()
                != churn_point(0.5).spec_hash())

    def test_deploy_arms_poisson_events(self):
        dep = _deploy(churn_point(1.2))
        assert dep.churn_events, "rate 1.2 over 4s should draw failures"
        peer_names = {p.name for p in dep.peers}
        assert {e.target for e in dep.churn_events} <= peer_names
        assert all(isinstance(e, ChurnEvent) for e in dep.churn_events)

    def test_baseline_and_churny_point_report_completion(self):
        base = run_scenario(churn_point(0.0))
        assert base.ok and base.metrics["completed"] == 1.0
        assert base.metrics["churn_failures"] == 0.0

        hot = run_scenario(churn_point(1.2))
        # high churn: scenario still "ok" — non-completion is the datum
        assert hot.ok
        assert hot.metrics["completed"] == 0.0
        assert hot.metrics["churn_failures"] > 0
        assert hot.reason

    def test_completion_probability_monotone_in_rate(self):
        """Aggregated over seeds, completion probability must not
        increase with the churn rate (the §III-D claim, quantified)."""
        seeds = (2011, 2013)
        probabilities = []
        for rate in (0.0, 0.6, 1.2):
            done = [
                run_scenario(churn_point(rate, seed)).metrics["completed"]
                for seed in seeds
            ]
            probabilities.append(sum(done) / len(done))
        assert probabilities[0] == 1.0
        assert probabilities == sorted(probabilities, reverse=True)
        assert probabilities[-1] < 1.0, "highest rate should kill runs"

    def test_churn_grid_registered_shape(self):
        assert CHURN_GRID.n_points >= 12
        points = CHURN_GRID.points()
        rates = {p.churn_profile.rate for p in points}
        kinds = {p.platform.kind for p in points}
        assert len(rates) >= 3 and len(kinds) >= 2
        assert len({p.spec_hash() for p in points}) == len(points)


class TestChurnGridDeterminism:
    def test_parallel_equals_serial_byte_identical(self, tmp_path):
        """The churn grid through the pooled runner returns exactly the
        serial results — failure injection included."""
        specs = [churn_point(r, s) for r in (0.6, 1.2)
                 for s in (2011, 2013)]
        serial = [run_scenario(s).canonical_json() for s in specs]

        clear_memo()
        runner = SweepRunner(cache_dir=tmp_path, max_workers=2)
        parallel = runner.run(specs, parallel=True)
        assert runner.misses == len(specs)
        assert [r.canonical_json() for r in parallel] == serial

    def test_rerun_is_byte_identical(self):
        spec = churn_point(1.2)
        assert (run_scenario(spec).canonical_json()
                == run_scenario(spec).canonical_json())


class TestSpecWiring:
    def test_tcp_plan_reaches_the_replay(self):
        base = ScenarioSpec(
            name="tcp-probe", kind="predict",
            workload=CHURN_GRID.base.workload, n_peers=4,
        )
        lossy = base.with_override("tcp.bandwidth_factor", 0.4)
        t_default = run_scenario(base).t
        t_lossy = run_scenario(lossy).t
        assert t_lossy > t_default, "halving link efficiency must hurt"

    def test_timer_plan_reaches_overlay_config(self):
        spec = churn_point(0.0).with_override("timers.peer_expiry", 45.0)
        dep = _deploy(spec)
        assert dep.overlay.config.peer_expiry == 45.0
        assert dep.overlay.config.state_update_interval == 30.0

    def test_time_limit_bounds_failed_runs(self):
        spec = churn_point(1.2)
        assert spec.time_limit == 600.0
        result = run_scenario(spec)
        assert result.metrics["completed"] == 0.0

    def test_plan_validation(self):
        with pytest.raises(ValueError, match="rate"):
            ChurnProfile(rate=-1.0)
        with pytest.raises(ValueError, match="horizon"):
            ChurnProfile(horizon=0.0)
        with pytest.raises(ValueError, match="bandwidth_factor"):
            TcpPlan(bandwidth_factor=0.0)
        with pytest.raises(ValueError, match="peer_expiry"):
            TimerPlan(peer_expiry=10.0, state_update_interval=30.0)
        with pytest.raises(ValueError, match="time_limit"):
            ScenarioSpec(name="x", time_limit=-1.0)

    def test_has_churn(self):
        assert not ScenarioSpec(name="x").has_churn
        assert churn_point(0.1).has_churn


class TestEarlyFailures:
    def test_draws_inside_settle_window_fire_instead_of_crashing(self):
        """Reviewer repro: on xdsl the settle clock passes t≈0.067s, and
        a hot Poisson draw can land before it — the event must fire at
        the earliest instant, not raise ValueError('negative delay')."""
        spec = (churn_point(8.0, seed=2005)
                .with_override("platform.kind", "xdsl"))
        result = run_scenario(spec)
        assert result.ok
        assert result.metrics["churn_failures"] > 0
