"""Tests for accuracy metrics, Table-I classification, and reports."""

import pytest

from repro.analysis import (
    BETTER,
    LOWER,
    SAME,
    SLIGHTLY_LOWER,
    accuracy,
    classify,
    compare_configs,
    equivalence_search,
    find_equivalent_config,
    format_equivalence_table,
    format_series,
    format_table,
    relative_error,
    series_accuracy,
    speedup_series,
)


class TestRelativeError:
    def test_signed(self):
        assert relative_error(11.0, 10.0) == pytest.approx(0.1)
        assert relative_error(9.0, 10.0) == pytest.approx(-0.1)

    def test_zero_reference_rejected(self):
        with pytest.raises(ValueError):
            relative_error(1.0, 0.0)

    def test_accuracy_aggregates(self):
        report = accuracy([(10.0, 10.5), (20.0, 19.0)])
        assert report.mape == pytest.approx((0.05 + 0.05) / 2)
        assert report.max_abs_pct == pytest.approx(0.05)
        assert report.n_points == 2
        assert "MAPE" in str(report)

    def test_accuracy_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy([])

    def test_series_accuracy_common_keys(self):
        ref = {2: 10.0, 4: 5.0, 8: 2.5}
        pred = {2: 10.0, 4: 5.5}
        report = series_accuracy(ref, pred)
        assert report.n_points == 2

    def test_series_accuracy_disjoint_rejected(self):
        with pytest.raises(ValueError):
            series_accuracy({1: 1.0}, {2: 2.0})

    def test_speedup_series(self):
        sp = speedup_series({2: 40.0, 4: 20.0, 8: 10.0})
        assert sp == {2: 1.0, 4: 2.0, 8: 4.0}


class TestClassification:
    def test_bands(self):
        assert classify(8.0, 10.0) == BETTER
        assert classify(10.0, 10.0) == SAME
        assert classify(10.15, 10.0) == SAME
        assert classify(11.0, 10.0) == SLIGHTLY_LOWER
        assert classify(15.0, 10.0) == SLIGHTLY_LOWER
        assert classify(20.0, 10.0) == LOWER

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            classify(0.0, 1.0)
        with pytest.raises(ValueError):
            classify(1.0, -1.0)

    def test_compare_configs_rows(self):
        lan = {2: 41.0, 4: 21.0}
        g5k = {2: 40.0, 4: 20.0}
        rows = compare_configs(lan, g5k, "lan", "Grid5000", [(2, 2), (4, 4)])
        assert rows[0].verdict == SLIGHTLY_LOWER
        assert rows[0].candidate_platform == "lan"
        assert rows[0].ratio == pytest.approx(41.0 / 40.0)
        assert rows[0].as_tuple() == (2, "lan", SLIGHTLY_LOWER, 2, "Grid5000")

    def test_find_equivalent_smallest(self):
        lan = {2: 50.0, 4: 25.0, 8: 13.0}
        assert find_equivalent_config(lan, 24.0) == 4
        assert find_equivalent_config(lan, 100.0) == 2
        assert find_equivalent_config(lan, 1.0) is None

    def test_equivalence_search(self):
        lan = {2: 50.0, 4: 25.0, 8: 13.0}
        g5k = {2: 40.0, 8: 10.0}
        eq = equivalence_search(lan, g5k)
        assert eq[2] == 2   # 50/40 = 1.25 within tolerance
        assert eq[8] == 8   # 13/10 = 1.3


class TestReports:
    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 20.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(l) == len(lines[0]) for l in lines[1:])

    def test_format_series(self):
        text = format_series(
            "Fig 9", "peers", {"O0": {2: 40.0, 4: 20.0}, "O3": {2: 14.0}}
        )
        assert "Fig 9" in text
        assert "40.000s" in text
        assert "-" in text  # missing O3 point at 4 peers

    def test_format_equivalence_table(self):
        lan = {8: 21.0}
        g5k = {4: 20.0}
        rows = compare_configs(lan, g5k, "LAN", "Grid5000", [(8, 4)])
        text = format_equivalence_table(rows)
        assert "Performance" in text
        assert "LAN" in text and "Grid5000" in text
