"""Tests for accuracy metrics, Table-I classification, and reports."""

import pytest

from repro.analysis import (
    BETTER,
    LOWER,
    SAME,
    SLIGHTLY_LOWER,
    accuracy,
    classify,
    compare_configs,
    equivalence_search,
    find_equivalent_config,
    format_equivalence_table,
    format_series,
    format_table,
    relative_error,
    series_accuracy,
    speedup_series,
)


class TestRelativeError:
    def test_signed(self):
        assert relative_error(11.0, 10.0) == pytest.approx(0.1)
        assert relative_error(9.0, 10.0) == pytest.approx(-0.1)

    def test_zero_reference_rejected(self):
        with pytest.raises(ValueError):
            relative_error(1.0, 0.0)

    def test_accuracy_aggregates(self):
        report = accuracy([(10.0, 10.5), (20.0, 19.0)])
        assert report.mape == pytest.approx((0.05 + 0.05) / 2)
        assert report.max_abs_pct == pytest.approx(0.05)
        assert report.n_points == 2
        assert "MAPE" in str(report)

    def test_accuracy_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy([])

    def test_series_accuracy_common_keys(self):
        ref = {2: 10.0, 4: 5.0, 8: 2.5}
        pred = {2: 10.0, 4: 5.5}
        report = series_accuracy(ref, pred)
        assert report.n_points == 2

    def test_series_accuracy_disjoint_rejected(self):
        with pytest.raises(ValueError):
            series_accuracy({1: 1.0}, {2: 2.0})

    def test_speedup_series(self):
        sp = speedup_series({2: 40.0, 4: 20.0, 8: 10.0})
        assert sp == {2: 1.0, 4: 2.0, 8: 4.0}


class TestClassification:
    def test_bands(self):
        assert classify(8.0, 10.0) == BETTER
        assert classify(10.0, 10.0) == SAME
        assert classify(10.15, 10.0) == SAME
        assert classify(11.0, 10.0) == SLIGHTLY_LOWER
        assert classify(15.0, 10.0) == SLIGHTLY_LOWER
        assert classify(20.0, 10.0) == LOWER

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            classify(0.0, 1.0)
        with pytest.raises(ValueError):
            classify(1.0, -1.0)

    def test_compare_configs_rows(self):
        lan = {2: 41.0, 4: 21.0}
        g5k = {2: 40.0, 4: 20.0}
        rows = compare_configs(lan, g5k, "lan", "Grid5000", [(2, 2), (4, 4)])
        assert rows[0].verdict == SLIGHTLY_LOWER
        assert rows[0].candidate_platform == "lan"
        assert rows[0].ratio == pytest.approx(41.0 / 40.0)
        assert rows[0].as_tuple() == (2, "lan", SLIGHTLY_LOWER, 2, "Grid5000")

    def test_find_equivalent_smallest(self):
        lan = {2: 50.0, 4: 25.0, 8: 13.0}
        assert find_equivalent_config(lan, 24.0) == 4
        assert find_equivalent_config(lan, 100.0) == 2
        assert find_equivalent_config(lan, 1.0) is None

    def test_equivalence_search(self):
        lan = {2: 50.0, 4: 25.0, 8: 13.0}
        g5k = {2: 40.0, 8: 10.0}
        eq = equivalence_search(lan, g5k)
        assert eq[2] == 2   # 50/40 = 1.25 within tolerance
        assert eq[8] == 8   # 13/10 = 1.3


class TestReports:
    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 20.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(l) == len(lines[0]) for l in lines[1:])

    def test_format_series(self):
        text = format_series(
            "Fig 9", "peers", {"O0": {2: 40.0, 4: 20.0}, "O3": {2: 14.0}}
        )
        assert "Fig 9" in text
        assert "40.000s" in text
        assert "-" in text  # missing O3 point at 4 peers

    def test_format_equivalence_table(self):
        lan = {8: 21.0}
        g5k = {4: 20.0}
        rows = compare_configs(lan, g5k, "LAN", "Grid5000", [(8, 4)])
        text = format_equivalence_table(rows)
        assert "Performance" in text
        assert "LAN" in text and "Grid5000" in text


# ---------------------------------------------------------------------------
# sweep-vs-sweep comparison
# ---------------------------------------------------------------------------

from repro.analysis import (  # noqa: E402  (grouped with their tests)
    SweepData,
    compare_sweeps,
    parse_point_label,
)


def _point(name, t, ok=True, completed=None, **metrics):
    m = dict(metrics)
    if completed is not None:
        m["completed"] = completed
    return {"name": name, "spec_hash": "x" * 16,
            "result": {"name": name, "spec_hash": "x" * 16,
                       "kind": "reference", "t": t, "ok": ok,
                       "reason": "", "metrics": m}}


class TestParsePointLabel:
    def test_expanded_name(self):
        label = parse_point_label("grid[n_peers=4,workload.level=O3]")
        assert label == {"n_peers": "4", "workload.level": "O3"}

    def test_base_name_is_empty(self):
        assert parse_point_label("fig9-cluster-o0") == {}


class TestCompareSweeps:
    def test_matches_on_shared_axes_and_aggregates_rest(self):
        a = SweepData("base", [
            _point("g[rate=0,seed=1]", 2.0, completed=1.0),
            _point("g[rate=0,seed=2]", 2.2, completed=1.0),
        ])
        b = SweepData("churny", [
            _point("g[rate=0,platform.kind=lan,seed=1]", 2.4,
                   completed=1.0),
            _point("g[rate=0,platform.kind=cluster,seed=1]", 2.0,
                   completed=1.0),
            _point("g[rate=2,platform.kind=lan,seed=1]", 0.0,
                   completed=0.0),
            _point("g[rate=2,platform.kind=cluster,seed=1]", 3.0,
                   completed=1.0),
        ])
        cmp = compare_sweeps(a, b)
        assert cmp.shared_axes == ["rate", "seed"]
        rows = {tuple(r.key.values()): r for r in cmp.rows}
        matched = rows[("0", "1")]
        assert matched.n_a == 1 and matched.n_b == 2
        assert matched.mean_a == pytest.approx(2.0)
        assert matched.mean_b == pytest.approx(2.2)  # mean(2.4, 2.0)
        assert matched.ratio == pytest.approx(1.1)
        churny = rows[("2", "1")]
        # failed point excluded from the mean, included in P(complete)
        assert churny.mean_b == pytest.approx(3.0)
        assert churny.completion_b == pytest.approx(0.5)
        only_a = rows[("0", "2")]
        assert only_a.n_b == 0 and only_a.mean_b is None

    def test_numeric_labels_match_across_spellings(self):
        a = SweepData("a", [_point("g[rate=0]", 1.0)])
        b = SweepData("b", [_point("g[rate=0.0]", 2.0)])
        cmp = compare_sweeps(a, b)
        row = cmp.rows[0]
        assert row.n_a == 1 and row.n_b == 1
        assert row.delta == pytest.approx(1.0)

    def test_no_shared_axes_aggregates_whole_sweeps(self):
        a = SweepData("prox", [_point("heterogeneous-multisite", 4.0)])
        b = SweepData("rand", [_point("random-grouping", 5.0)])
        cmp = compare_sweeps(a, b)
        assert cmp.shared_axes == []
        assert len(cmp.rows) == 1
        assert cmp.rows[0].ratio == pytest.approx(1.25)

    def test_metric_can_come_from_metrics_dict(self):
        a = SweepData("a", [_point("g[x=1]", 1.0, makespan=7.0)])
        b = SweepData("b", [_point("g[x=1]", 1.0, makespan=14.0)])
        cmp = compare_sweeps(a, b, metric="makespan")
        assert cmp.rows[0].ratio == pytest.approx(2.0)

    def test_markdown_and_json_render(self):
        a = SweepData("base", [_point("g[rate=0]", 2.0, completed=1.0)])
        b = SweepData("hot", [_point("g[rate=0]", 0.0, completed=0.0)])
        cmp = compare_sweeps(a, b)
        md = cmp.to_markdown()
        assert "`base` vs `hot`" in md
        assert "| rate=0 |" in md
        assert "P(complete)" in md
        payload = cmp.to_dict()
        assert payload["rows"][0]["completion_b"] == 0.0
        import json as _json
        assert _json.loads(cmp.to_json()) == _json.loads(
            _json.dumps(payload)
        )

    def test_hard_failures_excluded_from_completion_probability(self):
        """ok=False points (engine errors) are not §III-D data."""
        b = SweepData("churny", [
            _point("g[rate=2]", 0.0, completed=0.0),            # datum
            _point("g[rate=2]", 0.0, ok=False, completed=0.0),  # error
            _point("g[rate=2]", 3.0, completed=1.0),
        ])
        a = SweepData("base", [_point("g[rate=2]", 3.0, completed=1.0)])
        cmp = compare_sweeps(a, b)
        row = cmp.rows[0]
        assert row.completion_b == pytest.approx(0.5)  # 1 of 2 ok points
        assert row.n_b == 3

    def test_non_finite_numeric_labels_do_not_crash(self):
        a = SweepData("a", [_point("g[time_limit=inf]", 1.0)])
        b = SweepData("b", [_point("g[time_limit=inf]", 2.0)])
        cmp = compare_sweeps(a, b)
        assert cmp.rows[0].n_a == cmp.rows[0].n_b == 1


class TestCompareOverAxisEdgeCases:
    """`compare --over AXIS` beyond the happy path: single-point
    sweeps, all-failed seed pools, and mismatched-axis errors."""

    def test_single_point_sweeps_compare_on_the_whole_sweep(self):
        """Unexpanded bases carry no grid labels: axes are empty, the
        diff is one '(all)' row, and --over has nothing to drop."""
        a = SweepData("solo-a", [_point("flat-allocation", 2.0,
                                        completed=1.0)])
        b = SweepData("solo-b", [_point("flat-allocation", 3.0,
                                        completed=1.0)])
        cmp = compare_sweeps(a, b)
        assert cmp.shared_axes == []
        (row,) = cmp.rows
        assert row.key == {}
        assert row.ratio == pytest.approx(1.5)
        assert "(all)" in cmp.to_markdown()

    def test_over_with_all_failed_seed_pool_renders_dashes(self):
        """A seed pool where every point hard-failed aggregates to
        None everywhere — rendered as em-dashes, never a crash."""
        a = SweepData("base", [
            _point("g[rate=1,seed=1]", 0.0, ok=False, completed=0.0),
            _point("g[rate=1,seed=2]", 0.0, ok=False, completed=0.0),
        ])
        b = SweepData("fixed", [
            _point("g[rate=1,seed=1]", 2.0, completed=1.0),
            _point("g[rate=1,seed=2]", 2.2, completed=1.0),
        ])
        cmp = compare_sweeps(a, b, metric="makespan", over=("seed",))
        (row,) = cmp.rows
        assert row.n_a == 2  # the points exist ...
        assert row.mean_a is None and row.completion_a is None  # ... dataless
        assert row.completion_b == 1.0
        assert row.delta is None and row.ratio is None
        md = cmp.to_markdown()
        assert "—" in md
        assert "nan" not in md

    def test_over_axis_in_neither_sweep_is_an_error(self):
        a = SweepData("a", [_point("g[rate=0,seed=1]", 1.0)])
        b = SweepData("b", [_point("g[rate=0,seed=1]", 1.0)])
        with pytest.raises(ValueError, match="sede"):
            compare_sweeps(a, b, over=("sede",))  # the typo is caught
        # the message names the axes that do exist, for the fix
        with pytest.raises(ValueError, match="rate"):
            compare_sweeps(a, b, over=("sede",))

    def test_over_axis_on_one_side_only_aggregates_not_errors(self):
        """An axis swept on one side only was never shared: --over on
        it is legitimate (the single-sided points aggregate)."""
        a = SweepData("a", [_point("g[rate=0]", 1.0)])
        b = SweepData("b", [
            _point("g[rate=0,seed=1]", 2.0),
            _point("g[rate=0,seed=2]", 4.0),
        ])
        cmp = compare_sweeps(a, b, over=("seed",))
        (row,) = cmp.rows
        assert row.key == {"rate": "0"}
        assert row.mean_b == pytest.approx(3.0)

    def test_cli_over_typo_exits_with_usage_error(self, tmp_path,
                                                  capsys):
        import json

        from repro.scenarios.cli import main

        sweeps = tmp_path / "sweeps"
        sweeps.mkdir()
        for label in ("a", "b"):
            (sweeps / f"{label}.json").write_text(json.dumps(
                {"label": label,
                 "points": [_point("g[rate=0,seed=1]", 1.0)]}))
        code = main(["compare", "a", "b", "--over", "sede",
                     "--cache-dir", str(tmp_path)])
        err = capsys.readouterr().err
        assert code == 2
        assert "sede" in err and "seed" in err
