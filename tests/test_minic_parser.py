"""Tests for the mini-C parser, unparser round-trip, and semantics."""

import pytest

from repro.dperf.minic import (
    ParseError,
    SemanticError,
    cast as A,
    check,
    parse,
    parse_expr,
    unparse,
)


class TestExpressions:
    def test_precedence_mul_over_add(self):
        e = parse_expr("1 + 2 * 3")
        assert isinstance(e, A.BinOp) and e.op == "+"
        assert isinstance(e.right, A.BinOp) and e.right.op == "*"

    def test_precedence_relational_over_logical(self):
        e = parse_expr("a < b && c > d")
        assert isinstance(e, A.BinOp) and e.op == "&&"

    def test_left_associativity(self):
        e = parse_expr("10 - 4 - 3")
        assert isinstance(e, A.BinOp) and e.op == "-"
        assert isinstance(e.left, A.BinOp) and e.left.op == "-"
        assert isinstance(e.right, A.IntLit) and e.right.value == 3

    def test_assignment_right_associative(self):
        e = parse_expr("a = b = 1")
        assert isinstance(e, A.Assign)
        assert isinstance(e.value, A.Assign)

    def test_compound_assignment(self):
        e = parse_expr("x += 2")
        assert isinstance(e, A.Assign) and e.op == "+="

    def test_assignment_to_literal_rejected(self):
        with pytest.raises(ParseError, match="assignment target"):
            parse_expr("3 = x")

    def test_ternary(self):
        e = parse_expr("a > 0 ? a : -a")
        assert isinstance(e, A.Cond)
        assert isinstance(e.other, A.UnOp)

    def test_call_with_args(self):
        e = parse_expr("fmax(a, b + 1)")
        assert isinstance(e, A.Call) and e.name == "fmax"
        assert len(e.args) == 2

    def test_multidim_index(self):
        e = parse_expr("u[i][j + 1]")
        assert isinstance(e, A.Index)
        assert e.base.name == "u"
        assert len(e.indices) == 2

    def test_cast(self):
        e = parse_expr("(double)n")
        assert isinstance(e, A.Cast) and e.type.name == "double"

    def test_cast_vs_parenthesized(self):
        e = parse_expr("(n)")
        assert isinstance(e, A.Ident)

    def test_pre_and_post_increment(self):
        pre = parse_expr("++i")
        post = parse_expr("i++")
        assert isinstance(pre, A.UnOp) and not pre.postfix
        assert isinstance(post, A.UnOp) and post.postfix

    def test_unary_plus_dropped(self):
        e = parse_expr("+x")
        assert isinstance(e, A.Ident)

    def test_nested_calls_and_parens(self):
        e = parse_expr("sqrt(fabs((a - b) * c))")
        assert isinstance(e, A.Call) and e.name == "sqrt"


class TestDeclarationsAndStatements:
    def test_function_definition(self):
        prog = parse("int add(int a, int b) { return a + b; }")
        f = prog.func("add")
        assert [p.name for p in f.params] == ["a", "b"]
        assert f.return_type.name == "int"

    def test_void_param_list(self):
        prog = parse("void f(void) { }")
        assert prog.func("f").params == []

    def test_prototype_skipped(self):
        prog = parse("double g(int n);\nint main() { return 0; }")
        assert prog.func_names == ["main"]

    def test_global_variable(self):
        prog = parse("int counter = 0;\nvoid f() { counter = 1; }")
        assert prog.globals[0].decls[0].name == "counter"

    def test_array_declaration(self):
        prog = parse("void f(int n) { double u[n][n]; u[0][0] = 1.0; }")
        decl = prog.func("f").body.stmts[0].decls[0]
        assert decl.is_array and len(decl.dims) == 2

    def test_array_parameter(self):
        prog = parse("void f(double u[], int n) { u[0] = n; }")
        p = prog.func("f").params[0]
        assert p.is_array and p.dims == [None]

    def test_pointer_parameter_as_array(self):
        prog = parse("void f(double *u) { u[0] = 1.0; }")
        assert prog.func("f").params[0].is_array

    def test_multiple_declarators(self):
        prog = parse("void f() { int i, j = 2, k; }")
        decls = prog.func("f").body.stmts[0].decls
        assert [d.name for d in decls] == ["i", "j", "k"]
        assert decls[1].init.value == 2

    def test_for_loop_with_decl_init(self):
        prog = parse("void f(int n) { for (int i = 0; i < n; i++) { n = n; } }")
        loop = prog.func("f").body.stmts[0]
        assert isinstance(loop, A.For)
        assert isinstance(loop.init, A.DeclStmt)

    def test_for_loop_empty_clauses(self):
        prog = parse("void f() { for (;;) { break; } }")
        loop = prog.func("f").body.stmts[0]
        assert loop.init is None and loop.cond is None and loop.step is None

    def test_while_and_if_else(self):
        prog = parse(
            """
            int f(int n) {
                int s = 0;
                while (n > 0) {
                    if (n % 2 == 0) s += n; else s -= n;
                    n--;
                }
                return s;
            }
            """
        )
        body = prog.func("f").body
        assert isinstance(body.stmts[1], A.While)

    def test_break_continue(self):
        prog = parse("void f() { while (1) { if (1) break; continue; } }")
        assert prog is not None

    def test_empty_statement(self):
        prog = parse("void f() { ; }")
        assert isinstance(prog.func("f").body.stmts[0], A.Empty)

    def test_missing_semicolon_reports_position(self):
        with pytest.raises(ParseError, match=r"<source>:\d+:\d+"):
            parse("void f() { int x = 1 }")

    def test_unterminated_block(self):
        with pytest.raises(ParseError, match="unterminated|expected"):
            parse("void f() { int x = 1;")

    def test_garbage_top_level(self):
        with pytest.raises(ParseError, match="declaration"):
            parse("42;")


class TestUnparseRoundTrip:
    SOURCES = [
        "int add(int a, int b) { return a + b; }",
        "void f(int n) { double u[n]; for (int i = 0; i < n; i++) u[i] = 0.0; }",
        "int main() { int x = 0; while (x < 10) { x++; if (x == 5) break; } return x; }",
        "double g(double x) { return x > 0.0 ? sqrt(x) : 0.0; }",
        'void h() { printf("hello %d\\n", 42); }',
        "void k(double u[], int n) { u[n - 1] += (double)n / 2.0; }",
    ]

    @pytest.mark.parametrize("src", SOURCES)
    def test_round_trip_stable(self, src):
        """parse → unparse → parse → unparse is a fixed point."""
        once = unparse(parse(src))
        twice = unparse(parse(once))
        assert once == twice

    @pytest.mark.parametrize("src", SOURCES)
    def test_round_trip_preserves_structure(self, src):
        p1 = parse(src)
        p2 = parse(unparse(p1))
        assert p1.func_names == p2.func_names
        # same statement type skeleton
        sk1 = [type(n).__name__ for n in A.walk(p1)]
        sk2 = [type(n).__name__ for n in A.walk(p2)]
        assert sk1 == sk2


class TestSemantics:
    def test_valid_program_passes(self):
        check(parse("int f(int n) { int s = 0; s += n; return s; }"))

    def test_undeclared_identifier(self):
        with pytest.raises(SemanticError, match="undeclared"):
            check(parse("void f() { x = 1; }"))

    def test_redeclaration_same_scope(self):
        with pytest.raises(SemanticError, match="redeclaration"):
            check(parse("void f() { int x; int x; }"))

    def test_shadowing_in_nested_scope_allowed(self):
        check(parse("void f() { int x; { int x; x = 1; } }"))

    def test_unknown_function(self):
        with pytest.raises(SemanticError, match="unknown function"):
            check(parse("void f() { frobnicate(); }"))

    def test_builtin_arity_enforced(self):
        with pytest.raises(SemanticError, match="expects 2"):
            check(parse("void f() { double x = fmax(1.0); }"))

    def test_printf_variadic_ok(self):
        check(parse('void f() { printf("%d %d", 1, 2); }'))

    def test_comm_api_known(self):
        check(parse("void f(double u[]) { p2psap_send(1, u, 10); }"))

    def test_break_outside_loop(self):
        with pytest.raises(SemanticError, match="outside"):
            check(parse("void f() { break; }"))

    def test_user_function_arity(self):
        with pytest.raises(SemanticError, match="expects 1"):
            check(parse("int g(int a) { return a; } void f() { g(1, 2); }"))

    def test_params_visible_in_body(self):
        check(parse("int f(int n, double u[]) { return n; }"))

    def test_globals_visible_everywhere(self):
        check(parse("int N = 4; int f() { return N; }"))

    def test_redefined_function(self):
        with pytest.raises(SemanticError, match="redefinition"):
            check(parse("void f() { } void f() { }"))
