"""Adversarial crash-matrix harness for coordinator recovery.

The matrix crashes {coordinator, member, both, tracker} at
{pre-dispatch, mid-compute, during re-dispatch, during election} over
two seeds, with the stand-in election enabled, and asserts the
*conservation* invariant on every cell: each subtask completes exactly
once, or the run reports non-completion — never a double completion.

On top of the matrix:

* **headline** — with election enabled, the ``coordinator-grid``
  completion probability is strictly greater than with election
  disabled at every nonzero coordinator churn rate on the documented
  seeds (the acceptance criterion);
* **determinism** — serial and parallel execution of matrix cells are
  byte-identical;
* **v3 pin** — with election off, the pre-election (SCHEMA_VERSION 3)
  recovery-grid dynamics reproduce bit for bit;
* **long memory** — ``failure_history`` persists across tasks within
  one overlay session, so the failure-aware policy separates from
  proximity on the first selection of a second task;
* the parse-time and draw-time error paths for the new fields.

The matrix reuses the registered ``coordinator-grid`` base (same
app/peers/level instance as the other churn grids), so the in-process
calibration cache is shared across the churn test files.
"""

import pytest

from repro.p2pdc.churn import ChurnPlan, CoordinatorChurn
from repro.p2pdc.messages import DutyCheckpoint, NodeRef
from repro.p2pdc.overlay import OverlayConfig
from repro.scenarios import SCENARIOS, SweepRunner, run_scenario
from repro.scenarios.runner import _deploy, clear_memo, execute_reference
from repro.scenarios.spec import (
    ChurnEventSpec,
    ChurnProfile,
    RecoveryPlan,
    ScenarioSpec,
)

COORD_GRID = SCENARIOS["coordinator-grid"]

# -- the discovered anatomy of a coordinator-grid baseline run ------------
# (deterministic: the overlay layout and proximity grouping do not
# depend on the seed; TestMatrixAnatomy pins it so the hard-coded
# crash targets below can never silently drift)
COORD0, COORD1 = "p-1-0", "p-1-4"        # the two group coordinators
STANDIN0 = "p-1-1"                        # first stand-in of group 0
MEMBER0, MEMBER1 = "p-1-3", "p-1-6"       # plain computing members
TRACKER = "tracker-1"                     # zone tracker of the peers
T_PRE = 0.0015      # mid-reservation (collected ~0.0010, dispatch ~0.0020)
T_MID = 1.0         # mid-compute (window ~0.002 .. ~2.53)
T_REDISPATCH = 6.05  # just after the ~6.0 loss report of a T_MID crash
T_ELECTION = 6.1     # just after the ~6.0 stand-in claim


def grid_point(rate: float = 0.0, seed: int = 2011,
               election: bool = True, **overrides) -> ScenarioSpec:
    spec = COORD_GRID.base.with_override(
        "churn_profile.coordinator_churn_rate", rate)
    spec = spec.with_override("seed", seed)
    spec = spec.with_override("recovery.election", election)
    for path, value in overrides.items():
        spec = spec.with_override(path.replace("__", "."), value)
    return spec


ROLES = ("coordinator", "member", "both", "tracker")
PHASES = ("pre-dispatch", "mid-compute", "during-redispatch",
          "during-election")
SEEDS = (2011, 2013)


def matrix_events(role: str, phase: str):
    """The scripted crash schedule of one matrix cell."""
    events = []
    if phase == "pre-dispatch":
        t = T_PRE
    elif phase == "mid-compute":
        t = T_MID
    elif phase == "during-redispatch":
        # a member loss whose re-dispatch is in flight at the crash
        events.append(ChurnEventSpec(time=T_MID, kind="peer",
                                     target=MEMBER0))
        t = T_REDISPATCH
    else:  # during-election
        # a coordinator loss whose election resolves at ~6.0
        events.append(ChurnEventSpec(time=T_MID, kind="coordinator",
                                     target=COORD0))
        t = T_ELECTION
    coord_target = COORD1 if phase == "during-election" else COORD0
    if role in ("coordinator", "both"):
        events.append(ChurnEventSpec(time=t, kind="coordinator",
                                     target=coord_target))
    if role in ("member", "both"):
        if phase == "during-election":
            member_target = STANDIN0   # kill the freshly elected stand-in
        elif phase == "during-redispatch":
            member_target = MEMBER1
        else:
            member_target = MEMBER0
        member_t = t + 0.05 if role == "both" else t
        events.append(ChurnEventSpec(time=member_t, kind="peer",
                                     target=member_target))
    if role == "tracker":
        events.append(ChurnEventSpec(time=t, kind="tracker",
                                     target=TRACKER))
    return tuple(events)


def matrix_point(role: str, phase: str, seed: int) -> ScenarioSpec:
    return grid_point(seed=seed).with_override(
        "churn", matrix_events(role, phase))


class TestMatrixAnatomy:
    """Pin the allocation anatomy the hard-coded crash targets assume."""

    def test_baseline_layout(self):
        dep, outcome = execute_reference(grid_point())
        assert outcome.ok
        assert [c.name for c in outcome.coordinators] == [COORD0, COORD1]
        groups = [[r.name for r in g] for g in outcome.groups]
        assert STANDIN0 in groups[0] and MEMBER0 in groups[0]
        assert MEMBER1 in groups[1]
        assert TRACKER in {t.name for t in dep.trackers}
        timings = outcome.timings
        # the phase instants really land in their protocol phases
        assert timings.collected_at < T_PRE < timings.compute_started_at
        assert timings.compute_started_at < T_MID < timings.completed_at


class TestCrashMatrix:
    """Conservation on every cell: exactly once, or reported failure."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("phase", PHASES)
    @pytest.mark.parametrize("role", ROLES)
    def test_exactly_once_or_reported_failure(self, role, phase, seed):
        spec = matrix_point(role, phase, seed)
        dep, outcome = execute_reference(spec)
        n = spec.n_peers
        ranks = [r.rank for r in outcome.results]
        assert len(ranks) == len(set(ranks)), "a rank completed twice"
        if outcome.ok:
            assert sorted(ranks) == list(range(n))
        else:
            assert outcome.reason
            assert len(ranks) < n
        # whatever the cell did, the submitter never accepted a rank
        # twice across batches (the coordinator-side dedup may fire —
        # that is the mechanism working, not a violation)
        accepted = [r.rank for r in outcome.results]
        assert len(accepted) == len(set(accepted))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_coordinator_mid_compute_recovers(self, seed):
        """The cell the whole subsystem exists for: a coordinator crash
        mid-computation completes via a stand-in — the v3 known
        limitation, closed."""
        dep, outcome = execute_reference(
            matrix_point("coordinator", "mid-compute", seed))
        assert outcome.ok, outcome.reason
        counters = dep.overlay.stats.counters
        assert counters.get("coordinator_elections", 0) >= 1
        assert counters.get("coordinator_handoffs", 0) >= 1
        # the dead coordinator's own rank was recovered too
        assert counters.get("redispatched_subtasks", 0) >= 1
        standin = dep.overlay.registry[STANDIN0]
        assert 1 in standin._duties or standin.completed_subtasks

    @pytest.mark.parametrize("seed", SEEDS)
    def test_election_crash_triggers_second_election(self, seed):
        """Killing the freshly elected stand-in forces a second
        election — and the group still converges."""
        dep, outcome = execute_reference(
            matrix_point("member", "during-election", seed))
        counters = dep.overlay.stats.counters
        assert counters.get("coordinator_elections", 0) >= 2
        assert outcome.ok, outcome.reason

    def test_matrix_without_election_reports_failure(self):
        """The same coordinator crash with election off is the pinned
        v3 behaviour: the group dies and the run reports it."""
        spec = matrix_point("coordinator", "mid-compute", 2011)
        spec = spec.with_override("recovery.election", False)
        dep, outcome = execute_reference(spec)
        assert not outcome.ok
        assert outcome.reason
        assert dep.overlay.stats.counters.get("coordinator_elections",
                                              0) == 0


class TestCrossFaultMatrix:
    """Crash matrix × network faults: the recovery subsystem must hold
    its conservation guarantee when the control plane itself is lossy.

    Two adversarial compositions on the matrix anatomy:

    * a coordinator crash whose *election runs inside a partition
      window* — checkpoint broadcasts, stand-in claims and hand-off
      traffic all cross the partition and must survive on retries;
    * a tracker crash *under message loss* — the line-repair and
      re-registration traffic rides the same reliable envelopes.
    """

    # opens at the mid-compute crash, heals well before the time limit;
    # the ~6.0 election lands inside the window
    FAULT_PARTITION = (
        ("fault_plan.partition_start", T_MID),
        ("fault_plan.partition_duration", 8.0),
    )
    FAULT_LOSS = (("fault_plan.loss", 0.02),)

    def _cell(self, role, phase, seed, fault_overrides):
        spec = matrix_point(role, phase, seed)
        for path, value in fault_overrides:
            spec = spec.with_override(path, value)
        return execute_reference(spec)

    def _assert_conserved(self, spec_n, outcome):
        ranks = [r.rank for r in outcome.results]
        assert len(ranks) == len(set(ranks)), "a rank completed twice"
        assert outcome.ok, outcome.reason
        assert sorted(ranks) == list(range(spec_n))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_election_during_partition(self, seed):
        dep, outcome = self._cell("coordinator", "mid-compute", seed,
                                  self.FAULT_PARTITION)
        self._assert_conserved(COORD_GRID.base.n_peers, outcome)
        counters = dep.overlay.stats.counters
        assert counters.get("coordinator_elections", 0) >= 1
        # the partition really severed traffic mid-election, and the
        # hardening re-sent through it rather than deadlocking (sends
        # to the *crashed* coordinator legitimately exhaust their
        # bounded retries and are abandoned — that is the backoff cap
        # working, and the run completes regardless)
        assert dep.overlay.faults.stats.partition_blocked > 0
        assert counters.get("reliable_retries", 0) > 0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_tracker_crash_under_loss(self, seed):
        dep, outcome = self._cell("tracker", "mid-compute", seed,
                                  self.FAULT_LOSS)
        self._assert_conserved(COORD_GRID.base.n_peers, outcome)
        assert dep.overlay.faults.stats.messages_lost > 0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_double_crash_under_loss_stays_conserved(self, seed):
        """The hardest composition: coordinator and member die together
        while the network drops messages — exactly-once still holds
        (completion is allowed to fail; double-completion never is)."""
        spec = matrix_point("both", "mid-compute", seed)
        for path, value in self.FAULT_LOSS:
            spec = spec.with_override(path, value)
        dep, outcome = execute_reference(spec)
        ranks = [r.rank for r in outcome.results]
        assert len(ranks) == len(set(ranks)), "a rank completed twice"
        if not outcome.ok:
            assert outcome.reason
            assert len(ranks) < COORD_GRID.base.n_peers


class TestElectionHeadline:
    """The acceptance criterion, on the registered grid's own axes."""

    RATES = COORD_GRID.grid_dict()["churn_profile.coordinator_churn_rate"]
    GRID_SEEDS = COORD_GRID.grid_dict()["seed"]

    def _probability(self, rate, election):
        done = [
            run_scenario(grid_point(rate, seed, election))
            .metrics["completed"]
            for seed in self.GRID_SEEDS
        ]
        return sum(done) / len(done)

    @pytest.mark.parametrize(
        "rate", [r for r in RATES if r > 0])
    def test_election_strictly_beats_no_election(self, rate):
        p_on = self._probability(rate, True)
        p_off = self._probability(rate, False)
        assert p_on > p_off, (rate, p_on, p_off)

    def test_rate_zero_is_equal_and_complete(self):
        assert self._probability(0.0, True) == 1.0
        assert self._probability(0.0, False) == 1.0

    def test_election_metrics_surface(self):
        rate = max(self.RATES)
        result = run_scenario(grid_point(rate, self.GRID_SEEDS[0]))
        m = result.metrics
        assert m["coordinator_crashes"] >= 1
        assert m["elections"] >= 1
        # the blackout spans at least the detection timeout
        assert m["handoff_latency"] > OverlayConfig().coord_ping_timeout
        assert m["completed"] == 1.0
        off = run_scenario(grid_point(rate, self.GRID_SEEDS[0],
                                      election=False))
        assert off.metrics["elections"] == 0.0
        # no election ⇒ no latency datum (absent, never a diluting 0.0)
        assert "handoff_latency" not in off.metrics
        assert off.metrics["coordinator_crashes"] >= 1

    def test_registered_grid_shape(self):
        assert COORD_GRID.n_points == 18
        points = COORD_GRID.points()
        assert len({p.spec_hash() for p in points}) == len(points)
        assert all(p.recovery.election for p in points)
        assert {p.churn_profile.coordinator_churn_rate for p in points} \
            == set(self.RATES)
        assert {p.selection_policy for p in points} == {
            "proximity", "random", "failure_aware"}
        # member churn stays off: the axis targets coordinators only
        assert {p.churn_profile.rate for p in points} == {0.0}


class TestDeterminism:
    def test_serial_parallel_matrix_byte_identical(self, tmp_path):
        """Matrix cells through the pooled runner return exactly the
        serial results — election and hand-off dynamics included."""
        specs = [matrix_point("coordinator", "mid-compute", seed)
                 for seed in SEEDS]
        specs += [matrix_point("both", "during-election", seed)
                  for seed in SEEDS]
        serial = [run_scenario(s).canonical_json() for s in specs]
        rerun = [run_scenario(s).canonical_json() for s in specs]
        assert rerun == serial

        clear_memo()
        runner = SweepRunner(cache_dir=tmp_path, max_workers=2)
        parallel = runner.run(specs, parallel=True)
        assert runner.misses == len(specs)
        assert [r.canonical_json() for r in parallel] == serial


#: Pre-election (SCHEMA_VERSION 3) recovery-grid dynamics, captured on
#: the cluster platform before the election subsystem landed.  With
#: election off the new code must reproduce them exactly — the
#: regression pin for "no behavior drift at the default".  Keys are
#: (rejoin_rate, selection_policy, seed).
V3_PINS = {
    (0.0, "proximity", 2011): dict(
        t=0.0, ok=True, reason="computation timed out", completed=0.0,
        churn_failures=3.0, rejoined_peers=0.0, redispatched_subtasks=0.0,
        sim_events=10969.0),
    (0.0, "proximity", 2013): dict(
        t=0.0, ok=True, reason="computation timed out", completed=0.0,
        churn_failures=7.0, rejoined_peers=0.0, redispatched_subtasks=0.0,
        sim_events=9051.0),
    (0.5, "proximity", 2011): dict(
        t=23.484804239272478, ok=True, reason="", completed=1.0,
        churn_failures=3.0, rejoined_peers=3.0, redispatched_subtasks=2.0,
        makespan=23.486231508837694, sim_events=14256.0),
    (0.5, "proximity", 2013): dict(
        t=38.49204597885735, ok=True, reason="", completed=1.0,
        churn_failures=7.0, rejoined_peers=7.0, redispatched_subtasks=2.0,
        makespan=38.49347324842257, sim_events=14605.0),
    (2.0, "proximity", 2011): dict(
        t=23.484804239272478, ok=True, reason="", completed=1.0,
        churn_failures=3.0, rejoined_peers=3.0, redispatched_subtasks=2.0,
        makespan=23.486231508837694, sim_events=14257.0),
    (2.0, "proximity", 2013): dict(
        t=38.49204597885735, ok=True, reason="", completed=1.0,
        churn_failures=7.0, rejoined_peers=7.0, redispatched_subtasks=2.0,
        makespan=38.49347324842257, sim_events=14605.0),
    (2.0, "random", 2011): dict(
        t=10.463101952380287, ok=True, reason="", completed=1.0,
        churn_failures=3.0, rejoined_peers=3.0, redispatched_subtasks=1.0,
        makespan=10.464111134988983, sim_events=13785.0),
    (2.0, "random", 2013): dict(
        t=8.490576870524656, ok=True, reason="", completed=1.0,
        churn_failures=7.0, rejoined_peers=7.0, redispatched_subtasks=2.0,
        makespan=8.491591896611613, sim_events=12404.0),
    (2.0, "failure_aware", 2011): dict(
        t=23.484804239272478, ok=True, reason="", completed=1.0,
        churn_failures=3.0, rejoined_peers=3.0, redispatched_subtasks=2.0,
        makespan=23.486231508837694, sim_events=14257.0),
    (2.0, "failure_aware", 2013): dict(
        t=38.49204597885735, ok=True, reason="", completed=1.0,
        churn_failures=7.0, rejoined_peers=7.0, redispatched_subtasks=2.0,
        makespan=38.49347324842257, sim_events=14605.0),
}


class TestNoDriftWithElectionOff:
    """Election off ⇒ v3 recovery-grid manifests reproduce bit for bit
    (sim_events equality is the strongest practical byte-identity
    signal: one extra message or timer would shift it)."""

    RECOVERY_BASE = SCENARIOS["recovery-grid"].base

    @pytest.mark.parametrize("rejoin,policy,seed", sorted(V3_PINS))
    def test_v3_dynamics_reproduced(self, rejoin, policy, seed):
        spec = (self.RECOVERY_BASE
                .with_override("churn_profile.rejoin_rate", rejoin)
                .with_override("selection_policy", policy)
                .with_override("seed", seed))
        assert spec.recovery.election is False
        result = run_scenario(spec)
        pin = V3_PINS[(rejoin, policy, seed)]
        assert result.t == pin["t"]
        assert result.ok == pin["ok"]
        assert result.reason == pin["reason"]
        for key in ("completed", "churn_failures", "rejoined_peers",
                    "redispatched_subtasks", "makespan", "sim_events"):
            if key in pin:
                assert result.metrics[key] == pin[key], key
        # the election metrics exist and are exactly zero (latency is
        # absent: no election ran, so there is no blackout datum)
        assert result.metrics["coordinator_crashes"] == 0.0
        assert result.metrics["elections"] == 0.0
        assert "handoff_latency" not in result.metrics


class TestFailureHistoryLongMemory:
    """The ROADMAP "longer memory" item: failure_history persists
    across tasks within one overlay session, so failure_aware
    separates from proximity on the *first* selection of a second
    task."""

    CRASH_TARGET = "p-1-2"

    def _two_task_session(self, policy):
        from repro.p2pdc import TaskSpec
        from repro.p2psap import Scheme
        from repro.scenarios import workloads

        spec = grid_point(selection_policy=policy).with_override(
            "churn",
            (ChurnEventSpec(time=0.5, kind="peer",
                            target=self.CRASH_TARGET),),
        )
        dep = _deploy(spec)
        workload = workloads.make_workload(spec.workload, spec.n_peers,
                                           Scheme.SYNC)
        outcomes = []
        for _ in range(2):
            task = TaskSpec(workload=workload, n_peers=spec.n_peers,
                            spares=spec.spares, task_timeout=600.0)
            sig = dep.submitter.submit(task)
            dep.overlay.run_until(sig, limit=1e7)
            outcomes.append(sig.value)
        return dep, outcomes

    @pytest.mark.parametrize("policy", ("proximity", "failure_aware"))
    def test_history_survives_into_the_second_task(self, policy):
        dep, (first, second) = self._two_task_session(policy)
        assert first.ok and second.ok
        # the overlay session remembers the task-1 crash at task 2
        assert dep.overlay.failure_history.get(self.CRASH_TARGET, 0) >= 1
        chosen = {r.name for r in second.ranks}
        if policy == "failure_aware":
            # the once-crashed peer sorts behind every clean candidate:
            # it is demoted to spare on the first selection of task 2
            assert self.CRASH_TARGET not in chosen
        else:
            # proximity keeps collection order and picks it again —
            # the separation the failure-aware policy exists to give
            assert self.CRASH_TARGET in chosen


class TestElectionUnits:
    """Unit-level checks of the election building blocks."""

    @staticmethod
    def _deployment(policy="proximity"):
        return _deploy(grid_point(selection_policy=policy))

    @staticmethod
    def _checkpoint(refs, rank_of=None):
        return DutyCheckpoint(
            refs[0], task_id=99, group_index=0, submitter=refs[0],
            reserved=list(refs), rank_of=dict(rank_of or {}),
            expected_results=len(refs), version=1)

    def test_election_order_lowest_rank_alive(self):
        dep = self._deployment()
        peers = dep.peers[:4]
        refs = [p.ref for p in peers]
        rank_of = {r.name: i for i, r in enumerate(refs)}
        cp = self._checkpoint(refs, rank_of)
        order = peers[1]._election_order(cp, {refs[0].name})
        assert [r.name for r in order] == [r.name for r in refs[1:]]

    def test_election_order_failure_history_tie_break(self):
        dep = self._deployment(policy="failure_aware")
        peers = dep.peers[:4]
        refs = [p.ref for p in peers]
        rank_of = {r.name: i for i, r in enumerate(refs)}
        dep.overlay.failure_history[refs[1].name] = 2
        cp = self._checkpoint(refs, rank_of)
        order = peers[2]._election_order(cp, {refs[0].name})
        # the crashed-twice candidate drops to the back of the line
        assert [r.name for r in order] == [
            refs[2].name, refs[3].name, refs[1].name]

    def test_unranked_candidates_order_by_ip(self):
        dep = self._deployment()
        peers = dep.peers[:3]
        refs = [p.ref for p in peers]
        cp = self._checkpoint(refs, rank_of={})
        order = peers[0]._election_order(cp, set())
        assert [r.name for r in order] == sorted(
            (r.name for r in refs),
            key=lambda n: int(next(x.ip for x in refs if x.name == n)))

    def test_checkpoint_versions_monotone_and_piggybacked(self):
        """A coordinator broadcasts a fresh checkpoint only when the
        duty actually changed since the last one."""
        from repro.p2pdc import GroupDuty

        dep = self._deployment()
        coord, member = dep.peers[0], dep.peers[1]
        duty = GroupDuty(task_id=7, group_index=0,
                         submitter=dep.submitter.ref,
                         peers=[member.ref], reserved=[member.ref])
        duty.last_heard = {member.ref.name: dep.overlay.now}
        coord._duties[7] = duty
        duty.version += 1
        coord._broadcast_checkpoint(duty)
        assert duty.checkpointed == duty.version
        before = dep.overlay.stats.counters.get("msg:DutyCheckpoint", 0)
        coord.timer_compute_monitor(7)  # unchanged: no new checkpoint
        after = dep.overlay.stats.counters.get("msg:DutyCheckpoint", 0)
        assert after == before

    def test_duplicate_dispatch_is_ignored(self):
        from repro.p2pdc.messages import SubtaskMsg

        dep = self._deployment()
        peer = dep.peers[1]
        sentinel = object()
        peer._executions[42] = sentinel
        peer.handle_SubtaskMsg(SubtaskMsg(
            dep.submitter.ref, task_id=42, rank=0,
            final_dst=peer.ref, spec=None))
        assert peer._executions[42] is sentinel, "duplicate replaced it"
        assert len(peer._compute_procs) == 0

    def test_dispatch_for_already_computed_rank_resends_result(self):
        """A re-dispatch that lands on the peer that already computed
        exactly that rank (in a previous incarnation) re-sends the
        stored result and frees the reservation — never recomputes,
        never silently drops into a reserved-but-idle deadlock."""
        from repro.p2pdc.computation import WorkAssignment
        from repro.p2pdc.messages import SubtaskMsg, SubtaskResult

        dep = self._deployment()
        peer, coord = dep.peers[1], dep.peers[2]
        done = SubtaskResult(peer.ref, task_id=5, rank=2, checksum=2.0)
        peer.completed_subtasks.append(done)
        peer.busy, peer.current_task = True, 5
        assignment = WorkAssignment(
            task_id=5, rank=2, nranks=4, workload=None,
            coordinator=coord.ref, submitter=dep.submitter.ref)
        peer.handle_SubtaskMsg(SubtaskMsg(
            dep.submitter.ref, task_id=5, rank=2, final_dst=peer.ref,
            spec=assignment))
        counters = dep.overlay.stats.counters
        assert counters.get("resent_completed_results", 0) == 1
        assert 5 not in peer._executions
        assert not peer.busy and peer.current_task is None
        # a *different* rank of the same task is a fresh legitimate
        # dispatch, not a duplicate (it proceeds past the dedup)
        assert counters.get("msg:SubtaskResult", 0) >= 1


class TestValidation:
    """Parse- and draw-time error paths for the new fields."""

    def test_profile_rejects_negative_coordinator_rate(self):
        with pytest.raises(ValueError, match="coordinator_churn_rate"):
            ChurnProfile(coordinator_churn_rate=-0.1)

    def test_spec_rejects_election_without_recovery(self):
        with pytest.raises(ValueError, match="rejoin_rate"):
            ScenarioSpec(name="x", recovery=RecoveryPlan(election=True))
        # with the recovery subsystem on it parses fine
        ScenarioSpec(name="x", recovery=RecoveryPlan(election=True),
                     churn_profile=ChurnProfile(rejoin_rate=1.0))

    def test_recovery_plan_rejects_non_bool(self):
        with pytest.raises(ValueError, match="election"):
            RecoveryPlan(election="yes")

    def test_overlay_config_rejects_election_without_recovery(self):
        with pytest.raises(ValueError, match="election"):
            OverlayConfig(election=True, recovery=False)
        OverlayConfig(election=True, recovery=True)

    def test_overlay_config_coord_ping_validation(self):
        with pytest.raises(ValueError, match="coord_ping_interval"):
            OverlayConfig(coord_ping_interval=0.0)
        with pytest.raises(ValueError, match="coord_ping_timeout"):
            OverlayConfig(coord_ping_interval=5.0, coord_ping_timeout=4.0)
        with pytest.raises(ValueError, match="election_backoff"):
            OverlayConfig(election_backoff=0.0)

    def test_coordinator_churn_draw_time_validation(self):
        from repro.p2pdc import poisson_peer_failures

        with pytest.raises(ValueError, match="rate"):
            CoordinatorChurn(rate=-1.0, seed=1)
        with pytest.raises(ValueError, match="kind"):
            poisson_peer_failures(1.0, ("c",), seed=1, kind="server")
        events = poisson_peer_failures(5.0, ("c0", "c1"), seed=1,
                                       kind="coordinator")
        assert events and all(e.kind == "coordinator" for e in events)

    def test_cli_parses_booleans(self):
        from repro.scenarios.cli import _parse_value

        assert _parse_value("true") is True
        assert _parse_value("False") is False
        assert _parse_value("0.5") == 0.5
        assert _parse_value("proximity") == "proximity"

    def test_coordinator_churn_reaches_overlay(self):
        dep = _deploy(grid_point(rate=0.7, seed=2011))
        churn = dep.overlay.coordinator_churn
        assert churn is not None and churn.rate == 0.7
        assert _deploy(grid_point(rate=0.0)).overlay.coordinator_churn \
            is None

    def test_armed_coordinator_events_count_as_crash_events(self):
        from repro.p2pdc.churn import ChurnEvent

        dep = _deploy(grid_point())
        plan = ChurnPlan(events=[
            ChurnEvent(time=1.0, kind="coordinator", target=COORD0)])
        plan.arm(dep.overlay)
        kinds = [e.kind for e in dep.crash_events]
        assert kinds.count("coordinator") == 1


class TestCompareWorkflow:
    """The coordinator-grid headline end to end through the CLI."""

    def test_election_compare_headline(self, tmp_path, capsys):
        import json

        from repro.scenarios.cli import main

        common = [
            "sweep", "coordinator-grid",
            "--set", "churn_profile.coordinator_churn_rate=1.5",
            "--set", "seed=2011,2013",
            "--cache-dir", str(tmp_path), "--serial",
        ]
        assert main(common + ["--set", "recovery.election=false",
                              "--label", "noelection"]) == 0
        assert main(common + ["--label", "election"]) == 0
        out = tmp_path / "diff.json"
        assert main(["compare", "noelection", "election",
                     "--metric", "makespan", "--over", "seed",
                     "--format", "json", "--out", str(out),
                     "--cache-dir", str(tmp_path)]) == 0
        payload = json.loads(out.read_text())
        assert payload["shared_axes"] == [
            "churn_profile.coordinator_churn_rate"]
        (row,) = payload["rows"]
        assert row["completion_b"] > row["completion_a"]
        assert row["completion_b"] == 1.0
        capsys.readouterr()
