"""Tests for overlay deployment, membership, and the tracker line."""

import pytest

from repro.desim import AllOf
from repro.p2pdc import (
    ChurnPlan,
    IPv4,
    Overlay,
    OverlayConfig,
    deploy_overlay,
)
from repro.platforms import build_cluster, build_lan


def small_deployment(n_peers=12, n_zones=3, **kw):
    platform = build_cluster(max(n_peers, 2))
    return deploy_overlay(platform, n_peers=n_peers, n_zones=n_zones, **kw)


class TestDeployment:
    def test_all_peers_join(self):
        dep = small_deployment()
        assert all(p.joined for p in dep.peers)
        assert dep.submitter.joined

    def test_peers_join_their_zone_tracker(self):
        """IP proximity routes each peer to its own zone's tracker."""
        dep = small_deployment()
        for peer in dep.peers:
            zone = peer.name.split("-")[1]
            assert peer.tracker.name == f"tracker-{zone}"

    def test_tracker_zones_partition_peers(self):
        dep = small_deployment()
        zone_total = sum(
            len([p for p in t.zone.values() if not p.ref.name == "submitter"])
            for t in dep.trackers
        )
        assert zone_total >= len(dep.peers)

    def test_core_tracker_line_ordered(self):
        dep = small_deployment()
        for tracker in dep.trackers:
            ips = [int(r.ip) for r in tracker.neighbors]
            assert ips == sorted(ips)
            assert int(tracker.ip) not in ips

    def test_server_knows_core_trackers(self):
        dep = small_deployment()
        assert len(dep.server.known_trackers) == len(dep.trackers)

    def test_control_plane_has_real_cost(self):
        dep = small_deployment()
        assert dep.overlay.stats.control_messages > 0
        assert dep.overlay.stats.control_bytes > 0
        assert dep.overlay.now > 0


class TestTrackerJoin:
    def test_new_tracker_joins_line(self):
        dep = small_deployment()
        overlay = dep.overlay
        host = dep.overlay.platform.hosts[1]
        newcomer = overlay.create_tracker(host, "10.1.0.200", name="tracker-new")
        newcomer.join_overlay([t.ref for t in dep.trackers[:1]])
        overlay.run(until=overlay.now + 50)
        assert newcomer.joined
        # the closest existing tracker now lists the newcomer
        t1 = dep.trackers[1]
        assert any(r.name == "tracker-new" for r in t1.neighbors)
        # and the newcomer learned its neighbours
        assert len(newcomer.neighbors) >= 1

    def test_join_routed_to_closest(self):
        """A join sent to a far tracker is forwarded along the line."""
        dep = small_deployment(n_zones=3)
        overlay = dep.overlay
        newcomer = overlay.create_tracker(
            overlay.platform.hosts[2], "10.2.0.77", name="tracker-x"
        )
        # contact tracker-0 (wrong zone); the join must reach tracker-2
        newcomer.join_overlay([dep.trackers[0].ref])
        overlay.run(until=overlay.now + 50)
        assert newcomer.joined
        assert any(r.name == "tracker-x" for r in dep.trackers[2].neighbors)

    def test_server_informed_of_new_tracker(self):
        dep = small_deployment()
        overlay = dep.overlay
        newcomer = overlay.create_tracker(
            overlay.platform.hosts[3], "10.0.0.250", name="tracker-n"
        )
        newcomer.join_overlay([dep.trackers[0].ref])
        overlay.run(until=overlay.now + 50)
        assert any(
            r.name == "tracker-n" for r in dep.server.known_trackers
        )


class TestTrackerCrashRepair:
    def test_line_repairs_around_crash(self):
        dep = small_deployment(n_peers=12, n_zones=4)
        overlay = dep.overlay
        victim = dep.trackers[1]
        victim.crash()
        # run long enough for ping timeout + repair
        overlay.run(until=overlay.now + 120)
        for tracker in overlay.live_trackers():
            assert all(r.ip != victim.ip for r in tracker.neighbors), (
                f"{tracker.name} still lists the dead tracker"
            )
        # the line is still connected: left neighbour of t2 is now t0
        t0, t2 = dep.trackers[0], dep.trackers[2]
        assert t2.left_adjacent.name == t0.name
        assert t0.right_adjacent.name == t2.name

    def test_server_learns_of_crash(self):
        dep = small_deployment(n_peers=12, n_zones=4)
        victim = dep.trackers[2]
        victim.crash()
        dep.overlay.run(until=dep.overlay.now + 120)
        assert all(r.ip != victim.ip for r in dep.server.known_trackers)

    def test_orphan_peers_failover_to_neighbor_zone(self):
        dep = small_deployment(n_peers=12, n_zones=3)
        victim = dep.trackers[0]
        orphans = [p for p in dep.peers if p.tracker.name == victim.name]
        assert orphans
        victim.crash()
        dep.overlay.run(until=dep.overlay.now + 300)
        for peer in orphans:
            assert peer.joined
            assert peer.tracker.name != victim.name
            assert peer.rejoin_count >= 1


class TestServerOutage:
    def test_overlay_survives_server_down(self):
        dep = small_deployment(n_peers=8, n_zones=2)
        overlay = dep.overlay
        ChurnPlan().server_outage(overlay.now + 1, overlay.now + 200).arm(overlay)
        overlay.run(until=overlay.now + 100)
        assert not dep.server.alive
        # peers still heartbeat against trackers while the server is down
        assert all(p.joined for p in dep.peers)
        overlay.run(until=overlay.now + 200)
        assert dep.server.alive

    def test_stats_buffered_during_outage_then_flushed(self):
        dep = small_deployment(n_peers=8, n_zones=2)
        overlay = dep.overlay
        ChurnPlan().server_outage(overlay.now + 1, overlay.now + 130).arm(overlay)
        overlay.run(until=overlay.now + 400)
        # reports eventually reached the revived server
        assert len(dep.server.statistics) > 0

    def test_new_peer_joins_while_server_down(self):
        dep = small_deployment(n_peers=8, n_zones=2)
        overlay = dep.overlay
        dep.server.crash()
        newcomer = overlay.create_peer(
            overlay.platform.hosts[1], "10.1.0.99", name="late-peer"
        )
        sig = newcomer.join_overlay([t.ref for t in dep.trackers])
        overlay.run_until(sig, limit=overlay.now + 100)
        assert newcomer.joined


class TestPeerExpiry:
    def test_silent_peer_expires_from_zone(self):
        dep = small_deployment(n_peers=6, n_zones=2)
        overlay = dep.overlay
        victim = dep.peers[0]
        tracker = overlay.registry[victim.tracker.name]
        assert victim.name in tracker.zone
        victim.crash()
        overlay.run(until=overlay.now + 3 * overlay.config.peer_expiry)
        assert victim.name not in tracker.zone
        assert overlay.stats.get("peer_expiries") >= 1
