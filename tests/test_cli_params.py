"""The one ``--set`` grammar, shared across CLIs.

``repro.params`` owns value typing and pair parsing for the sweep CLI
(``--set path=v1,v2``), the fleet CLI (same grid form), and the serve
CLI (``--set path=value`` query overrides).  The parity tests pin
that a value spells the same typed thing in every CLI — the historical
bug class this kills is a boolean like ``recovery.election=true``
parsing as a (truthy) *string* in one CLI and a bool in another.
"""

import argparse

import pytest

from repro.params import parse_grid_sets, parse_scalar_set, parse_value
from repro.scenarios.cli import _parse_sets, _parse_value
from repro.serve.cli import _build_query


class TestParseValue:
    @pytest.mark.parametrize("text,expected", [
        ("true", True), ("True", True), ("FALSE", False),
        ("8", 8), ("-3", -3), ("0.25", 0.25), ("1e3", 1000.0),
        ("O3", "O3"), ("heat", "heat"), ("", ""),
    ])
    def test_typing(self, text, expected):
        value = parse_value(text)
        assert value == expected
        assert type(value) is type(expected)

    def test_scenarios_cli_uses_the_shared_parser(self):
        # the historical private name is the shared function itself
        assert _parse_value is parse_value


class TestPairForms:
    def test_grid_form(self):
        grid = parse_grid_sets(["n_peers=4,6,8", "recovery.election=true"])
        assert grid == {"n_peers": (4, 6, 8),
                        "recovery.election": (True,)}

    def test_grid_form_rejects_malformed(self):
        for bad in ("n_peers", "n_peers=", "=4"):
            with pytest.raises(ValueError, match="--set expects"):
                parse_grid_sets([bad])

    def test_scenarios_wrapper_keeps_systemexit(self):
        assert _parse_sets(["n_peers=4"]) == {"n_peers": (4,)}
        with pytest.raises(SystemExit, match="--set expects"):
            _parse_sets(["n_peers"])

    def test_scalar_form(self):
        assert parse_scalar_set("workload.level=O3") \
            == ("workload.level", "O3")
        assert parse_scalar_set("n_peers=8") == ("n_peers", 8)
        with pytest.raises(ValueError, match="--set expects"):
            parse_scalar_set("n_peers")

    @pytest.mark.parametrize("pair", [
        "n_peers=8", "workload.level=O3", "time_limit=2.5",
        "recovery.election=true", "selection_policy=random",
    ])
    def test_scalar_and_grid_forms_agree(self, pair):
        """Cross-CLI parity: one --set pair types identically whether
        it shapes a sweep grid or a serve query override."""
        path, scalar = parse_scalar_set(pair)
        grid = parse_grid_sets([pair])
        assert grid[path] == (scalar,)
        assert type(grid[path][0]) is type(scalar)


class TestServeQueryParity:
    def _query(self, *sets):
        return _build_query(argparse.Namespace(
            deadline=1.0, percentile=90.0, pool=3, seed_base=2011,
            set=list(sets),
        ))

    def test_overrides_arrive_typed(self):
        query = self._query("n_peers=8", "workload.level=O3",
                            "time_limit=2.5")
        assert query.n_peers == 8 and type(query.n_peers) is int
        assert query.workload.level == "O3"
        assert query.time_limit == 2.5

    def test_boolean_override_is_a_real_bool(self):
        # the spec rejects non-bool election values outright, so this
        # passing proves "true" reached it as True, not as the truthy
        # string "true" (election also needs rejoin_rate > 0 — the
        # cross-field guard)
        query = self._query("churn_profile.rejoin_rate=0.5",
                            "recovery.election=true")
        assert query.recovery.election is True

    def test_malformed_set_is_a_clean_usage_error(self):
        from repro.serve.cli import _UsageError

        with pytest.raises(_UsageError, match="--set expects"):
            self._query("n_peers")
