"""Property-test harness for the churn recovery subsystem.

Three invariant families over a seeded grid of (crash rate, rejoin
rate, selection policy) points:

* **conservation** — every subtask completes exactly once, or the run
  reports non-completion; never a double completion;
* **monotonicity** — completion probability is non-decreasing in the
  rejoin rate at a fixed crash rate (aggregated over seeds);
* **determinism** — byte-identical results for serial vs parallel
  ``recovery-grid`` execution and for reruns of the same seed.

Plus the regression pins: with ``rejoin_rate=0`` the subsystem is off
and the pre-recovery (SCHEMA_VERSION 2) churn-grid dynamics reproduce
exactly, and the spec-parse error paths for the new fields.

The grid points reuse the registered ``churn-grid``/``recovery-grid``
base (same app/peers/level instance), so the in-process calibration
cache is shared with the other churn tests.
"""

import pytest

from repro.desim.rng import derive_seed
from repro.p2pdc import ChurnEvent, poisson_peer_failures, rejoin_events
from repro.p2pdc.overlay import OverlayConfig
from repro.scenarios import SCENARIOS, SweepRunner, run_scenario
from repro.scenarios.runner import clear_memo, execute_reference
from repro.scenarios.spec import ChurnProfile, ScenarioSpec


RECOVERY_GRID = SCENARIOS["recovery-grid"]


def recovery_point(rate: float, rejoin: float, seed: int = 2011,
                   **overrides) -> ScenarioSpec:
    spec = RECOVERY_GRID.base.with_override("churn_profile.rate", rate)
    spec = spec.with_override("churn_profile.rejoin_rate", rejoin)
    spec = spec.with_override("seed", seed)
    for path, value in overrides.items():
        spec = spec.with_override(path.replace("__", "."), value)
    return spec


class TestRejoinSchedule:
    CRASHES = [
        ChurnEvent(time=1.0, kind="peer", target="p-0"),
        ChurnEvent(time=2.5, kind="peer", target="p-1"),
        ChurnEvent(time=0.5, kind="tracker", target="tracker-0"),
    ]

    def test_pure_function_of_inputs(self):
        a = rejoin_events(self.CRASHES, 2.0, seed=7)
        b = rejoin_events(self.CRASHES, 2.0, seed=7)
        assert a == b
        assert rejoin_events(self.CRASHES, 2.0, seed=8) != a

    def test_one_rejoin_per_peer_crash_after_it(self):
        out = rejoin_events(self.CRASHES, 2.0, seed=7, delay=0.25)
        assert [e.target for e in out] == ["p-0", "p-1"]  # no tracker
        assert all(e.kind == "peer-rejoin" for e in out)
        crash_at = {e.target: e.time for e in self.CRASHES}
        for e in out:
            assert e.time > crash_at[e.target] + 0.25

    def test_rejoin_seed_independent_of_crash_seed(self):
        """The recovery-grid contract: sweeping the rejoin rate never
        changes who crashes when."""
        targets = tuple(f"p-{i}" for i in range(12))
        crashes = poisson_peer_failures(1.0, targets, seed=3, horizon=8.0)
        again = poisson_peer_failures(1.0, targets, seed=3, horizon=8.0)
        assert crashes == again  # rejoin drawing never touched this
        slow = rejoin_events(crashes, 0.5, seed=derive_seed(3, "rejoin"))
        fast = rejoin_events(crashes, 4.0, seed=derive_seed(3, "rejoin"))
        assert [e.target for e in slow] == [e.target for e in fast]

    def test_validation(self):
        with pytest.raises(ValueError, match="rejoin rate"):
            rejoin_events(self.CRASHES, 0.0, seed=1)
        with pytest.raises(ValueError, match="rejoin delay"):
            rejoin_events(self.CRASHES, 1.0, seed=1, delay=-0.1)


class TestInjectionValidation:
    """The spec-parse and draw-time error paths for churn fields."""

    def test_poisson_rejects_negative_start(self):
        with pytest.raises(ValueError, match="start"):
            poisson_peer_failures(1.0, ("p-0",), seed=1, start=-1.0)

    def test_poisson_rejects_bad_rate_horizon_cap_kind(self):
        with pytest.raises(ValueError, match="rate"):
            poisson_peer_failures(-0.5, ("p-0",), seed=1)
        with pytest.raises(ValueError, match="horizon"):
            poisson_peer_failures(1.0, ("p-0",), seed=1, horizon=0.0)
        with pytest.raises(ValueError, match="max_failures"):
            poisson_peer_failures(1.0, ("p-0",), seed=1, max_failures=-1)
        with pytest.raises(ValueError, match="kind"):
            poisson_peer_failures(1.0, ("p-0",), seed=1, kind="server")

    def test_profile_rejects_bad_recovery_fields(self):
        with pytest.raises(ValueError, match="rejoin_rate"):
            ChurnProfile(rejoin_rate=-1.0)
        with pytest.raises(ValueError, match="rejoin_delay"):
            ChurnProfile(rejoin_delay=-0.5)
        with pytest.raises(ValueError, match="tracker_churn_rate"):
            ChurnProfile(tracker_churn_rate=-0.1)
        with pytest.raises(ValueError, match="start"):
            ChurnProfile(start=-1.0)

    def test_spec_rejects_unknown_selection_policy(self):
        with pytest.raises(ValueError, match="selection policy"):
            ScenarioSpec(name="x", selection_policy="psychic")
        with pytest.raises(ValueError, match="selection_policy"):
            OverlayConfig(selection_policy="psychic")

    def test_overlay_config_ping_validation(self):
        with pytest.raises(ValueError, match="compute_ping_interval"):
            OverlayConfig(compute_ping_interval=0.0)
        with pytest.raises(ValueError, match="compute_ping_timeout"):
            OverlayConfig(compute_ping_interval=5.0,
                          compute_ping_timeout=4.0)


#: The seeded grid the conservation property walks: baseline, a
#: recovered wave, a heavy wave, and each selection policy.
CONSERVATION_POINTS = (
    dict(rate=0.0, rejoin=0.0, seed=2011),
    dict(rate=1.2, rejoin=0.0, seed=2013),
    dict(rate=1.2, rejoin=1.0, seed=2011),
    dict(rate=1.2, rejoin=1.0, seed=2013),
    dict(rate=2.0, rejoin=1.0, seed=2017),
    dict(rate=1.2, rejoin=1.0, seed=2013, selection_policy="random"),
    dict(rate=1.2, rejoin=1.0, seed=2013, selection_policy="failure_aware"),
)


class TestConservation:
    """Every subtask completes exactly once, or the run says it did
    not complete — never a double completion."""

    @pytest.mark.parametrize(
        "point", CONSERVATION_POINTS,
        ids=lambda p: ",".join(f"{k}={v}" for k, v in p.items()),
    )
    def test_exactly_once_or_reported_failure(self, point):
        point = dict(point)
        spec = recovery_point(point.pop("rate"), point.pop("rejoin"),
                              point.pop("seed"), **point)
        dep, outcome = execute_reference(spec)
        n = spec.n_peers
        ranks = [r.rank for r in outcome.results]
        # never double-completed, regardless of outcome
        assert len(ranks) == len(set(ranks)), "a rank completed twice"
        if outcome.ok:
            assert sorted(ranks) == list(range(n))
        else:
            # non-completion is reported, with the reason preserved
            assert outcome.reason
            assert len(ranks) < n
        # coordinator-side dedup never fired more than the protocol
        # allows: any duplicate result was counted and dropped
        duplicates = dep.overlay.stats.counters.get("duplicate_results", 0)
        assert duplicates == 0, "a duplicate result reached a coordinator"

    def test_recovered_run_attributes_completions_to_live_peers(self):
        """After a re-dispatch the completing peer of the lost rank is
        the replacement (or a rejoined peer), never the dead one still
        counted as busy."""
        spec = recovery_point(1.2, 1.0, 2011)
        dep, outcome = execute_reference(spec)
        assert outcome.ok
        redispatched = dep.overlay.stats.counters.get(
            "redispatched_subtasks", 0)
        assert redispatched > 0, "this seed must exercise re-dispatch"
        completers = {}
        for peer in dep.peers:
            for result in peer.completed_subtasks:
                completers.setdefault(result.rank, peer)
        for rank, peer in completers.items():
            assert peer.alive or peer.rejoin_count > 0


class TestMonotonicity:
    """Completion probability is non-decreasing in the rejoin rate at
    a fixed crash rate (aggregated over the seeded grid)."""

    SEEDS = (2011, 2013, 2019)

    @pytest.mark.parametrize("rate", (1.2,))
    def test_completion_probability_monotone_in_rejoin_rate(self, rate):
        probabilities = []
        for rejoin in (0.0, 0.5, 2.0):
            done = [
                run_scenario(recovery_point(rate, rejoin, seed))
                .metrics["completed"]
                for seed in self.SEEDS
            ]
            probabilities.append(sum(done) / len(done))
        assert probabilities == sorted(probabilities), probabilities
        assert probabilities[0] < probabilities[-1], (
            "recovery must strictly beat the no-rejoin baseline at a "
            "rate that kills baseline runs"
        )

    def test_recovered_makespan_degrades_but_is_finite(self):
        """The acceptance headline: recovery completes where the
        baseline died, and survivors pay a real, finite makespan
        penalty (detection + re-dispatch + recompute)."""
        baseline = run_scenario(recovery_point(0.0, 0.0, 2011))
        recovered = run_scenario(recovery_point(1.2, 1.0, 2011))
        assert baseline.metrics["completed"] == 1.0
        assert recovered.metrics["completed"] == 1.0
        assert recovered.metrics["redispatched_subtasks"] > 0
        ratio = recovered.metrics["makespan"] / baseline.metrics["makespan"]
        assert 1.0 < ratio < 1e3, f"degradation ratio {ratio}"


class TestDeterminism:
    def test_serial_parallel_rerun_byte_identical(self, tmp_path):
        """A recovery-grid subset through the pooled runner returns
        exactly the serial results, re-dispatch dynamics included."""
        specs = [recovery_point(1.2, rejoin, seed)
                 for rejoin in (0.0, 1.0) for seed in (2011, 2013)]
        serial = [run_scenario(s).canonical_json() for s in specs]
        rerun = [run_scenario(s).canonical_json() for s in specs]
        assert rerun == serial

        clear_memo()
        runner = SweepRunner(cache_dir=tmp_path, max_workers=2)
        parallel = runner.run(specs, parallel=True)
        assert runner.misses == len(specs)
        assert [r.canonical_json() for r in parallel] == serial

    def test_registered_grid_shape(self):
        assert RECOVERY_GRID.n_points == 18
        points = RECOVERY_GRID.points()
        assert len({p.spec_hash() for p in points}) == len(points)
        assert {p.selection_policy for p in points} == {
            "proximity", "random", "failure_aware"}
        assert {p.churn_profile.rejoin_rate for p in points} == {0.0, 0.5, 2.0}
        # every point keeps the same crash process: the rejoin axis is
        # the only recovery lever
        assert {p.churn_profile.rate for p in points} == {1.2}


#: Pre-recovery (SCHEMA_VERSION 2) churn-grid dynamics, captured on
#: the cluster platform before the recovery subsystem landed.  With
#: rejoin_rate=0 the new code must reproduce them exactly — the
#: regression pin for "no behavior drift at the default".
V2_PINS = {
    (0.0, 2011): dict(t=2.5270921080617823, ok=True, reason="",
                      completed=1.0, churn_failures=0.0,
                      makespan=2.5285193776269996, sim_events=12367.0),
    (0.0, 2013): dict(t=2.52690690387282, ok=True, reason="",
                      completed=1.0, churn_failures=0.0,
                      makespan=2.5283341734380373, sim_events=12386.0),
    (0.6, 2011): dict(t=2.5270921080617823, ok=True, reason="",
                      completed=1.0, churn_failures=1.0,
                      makespan=2.5285193776269996, sim_events=12367.0),
    (0.6, 2013): dict(t=2.52690690387282, ok=True, reason="",
                      completed=1.0, churn_failures=3.0,
                      makespan=2.5283341734380373, sim_events=12388.0),
    (1.2, 2011): dict(t=0.0, ok=True, reason="computation timed out",
                      completed=0.0, churn_failures=3.0,
                      sim_events=10969.0),
    (1.2, 2013): dict(t=0.0, ok=True, reason="computation timed out",
                      completed=0.0, churn_failures=7.0,
                      sim_events=9051.0),
}


class TestNoDriftAtRejoinZero:
    """The spare-patching path of PR 2 is untouched when recovery is
    off: churn-grid points with rejoin_rate=0 reproduce the recorded
    pre-recovery dynamics bit for bit."""

    CHURN_GRID_BASE = SCENARIOS["churn-grid"].base

    @pytest.mark.parametrize("rate,seed", sorted(V2_PINS))
    def test_v2_dynamics_reproduced(self, rate, seed):
        spec = (self.CHURN_GRID_BASE
                .with_override("churn_profile.rate", rate)
                .with_override("seed", seed))
        assert spec.churn_profile.rejoin_rate == 0.0
        result = run_scenario(spec)
        pin = V2_PINS[(rate, seed)]
        assert result.t == pin["t"]
        assert result.ok == pin["ok"]
        assert result.reason == pin["reason"]
        for key in ("completed", "churn_failures", "makespan",
                    "sim_events"):
            if key in pin:
                assert result.metrics[key] == pin[key], key
        # the new recovery counters exist and are exactly zero
        assert result.metrics["rejoined_peers"] == 0.0
        assert result.metrics["redispatched_subtasks"] == 0.0


class TestCompareWorkflow:
    """The acceptance headline, end to end through the CLI: a
    rejoin=0 vs rejoin>0 `compare` shows strictly higher completion
    probability and a finite, nonzero survivors' makespan-degradation
    ratio."""

    def test_rejoin_compare_headline(self, tmp_path, capsys):
        import json

        from repro.scenarios.cli import main

        # rate 0.8 is a mixed-outcome wave on these seeds: the
        # baseline completes at 2017 and dies at 2011, so the
        # seed-aggregated row has both a completion jump and a
        # defined makespan on each side.
        common = [
            "sweep", "recovery-grid",
            "--set", "churn_profile.rate=0.8",
            "--cache-dir", str(tmp_path), "--serial",
        ]
        assert main(common + ["--set", "seed=2011,2017",
                              "--label", "norejoin"]) == 0
        assert main(common + ["--set", "churn_profile.rejoin_rate=2.0",
                              "--set", "seed=2011,2017",
                              "--label", "rejoin"]) == 0
        out = tmp_path / "diff.json"
        assert main(["compare", "norejoin", "rejoin",
                     "--metric", "makespan", "--over", "seed",
                     "--format", "json", "--out", str(out),
                     "--cache-dir", str(tmp_path)]) == 0
        payload = json.loads(out.read_text())
        assert payload["shared_axes"] == ["churn_profile.rate"]
        (row,) = payload["rows"]
        assert row["completion_b"] > row["completion_a"]
        assert row["completion_b"] == 1.0
        ratio = row["ratio"]  # survivors' makespan degradation (B/A)
        assert ratio is not None and 1.0 < ratio < 1e3
        capsys.readouterr()


class TestCoordinatorMonitorEdgeCases:
    """Unit-level checks of the loss-detection corner cases, on a
    settled deployment (no computation running)."""

    @staticmethod
    def _deployment():
        from repro.scenarios.runner import _deploy

        return _deploy(recovery_point(0.0, 1.0))  # recovery enabled

    @staticmethod
    def _duty(dep, coord, member, task_id=999):
        from repro.p2pdc import GroupDuty

        duty = GroupDuty(task_id=task_id, group_index=0,
                         submitter=dep.submitter.ref,
                         peers=[member.ref], reserved=[member.ref])
        duty.last_heard = {member.ref.name: -100.0}  # long silent
        coord._duties[task_id] = duty
        return duty

    def test_loss_deferred_until_rank_known(self):
        """A member that dies between reservation and dispatch stays
        under watch; the loss is reported once the relay names its
        rank — never silently dropped."""
        dep = self._deployment()
        coord, member = dep.peers[0], dep.peers[1]
        duty = self._duty(dep, coord, member)
        coord.timer_compute_monitor(999)
        assert duty.reserved == [member.ref], "dropped without a rank"
        duty.rank_of[member.ref.name] = 3
        coord.timer_compute_monitor(999)
        assert duty.reserved == []
        assert dep.overlay.stats.counters["subtasks_lost"] == 1

    def test_rank_update_ignored_by_foreign_coordinator(self):
        """A coordinator that receives RankUpdate as a mere halo
        neighbour of another group must not adopt the replacement."""
        from repro.p2pdc.messages import RankUpdate

        dep = self._deployment()
        coord, member, other = dep.peers[0], dep.peers[1], dep.peers[2]
        duty = self._duty(dep, coord, member)
        duty.rank_of[member.ref.name] = 3
        duty.ranks.add(3)
        # rank 7 belongs to some other group: no bookkeeping here
        coord.handle_RankUpdate(RankUpdate(
            dep.submitter.ref, task_id=999, rank=7, new_ref=other.ref))
        assert duty.reserved == [member.ref]
        assert other.ref.name not in duty.rank_of
        # rank 3 is ours: the replacement is adopted
        coord.handle_RankUpdate(RankUpdate(
            dep.submitter.ref, task_id=999, rank=3, new_ref=other.ref))
        assert [r.name for r in duty.reserved] == [other.ref.name]
        assert duty.rank_of[other.ref.name] == 3

    def test_reserve_cancel_releases_only_idle_reservations(self):
        from repro.p2pdc.messages import ReserveCancel

        dep = self._deployment()
        peer = dep.peers[1]
        peer.busy = True
        peer.current_task = 999
        peer.handle_ReserveCancel(ReserveCancel(dep.submitter.ref,
                                                task_id=998))
        assert peer.busy, "cancel for another task must not release"
        peer._executions[999] = object()
        peer.handle_ReserveCancel(ReserveCancel(dep.submitter.ref,
                                                task_id=999))
        assert peer.busy, "a computing peer must not release"
        peer._executions.clear()
        peer.handle_ReserveCancel(ReserveCancel(dep.submitter.ref,
                                                task_id=999))
        assert not peer.busy and peer.current_task is None

    def test_selection_policy_constants_agree(self):
        from repro.p2pdc.overlay import SELECTION_POLICIES as overlay_p
        from repro.scenarios.spec import SELECTION_POLICIES as spec_p

        assert tuple(overlay_p) == tuple(spec_p)


class TestPolicyAndTrackerChurnWiring:
    def test_selection_policy_reaches_overlay_config(self):
        from repro.scenarios.runner import _deploy

        spec = recovery_point(0.0, 0.0,
                              selection_policy="failure_aware")
        dep = _deploy(spec)
        assert dep.overlay.config.selection_policy == "failure_aware"
        assert dep.overlay.config.recovery is False
        hot = recovery_point(0.0, 1.0)
        assert _deploy(hot).overlay.config.recovery is True

    def test_policies_change_dynamics_but_not_validity(self):
        results = {
            policy: run_scenario(
                recovery_point(1.2, 1.0, 2013, selection_policy=policy)
            )
            for policy in ("proximity", "random", "failure_aware")
        }
        assert all(r.ok for r in results.values())
        hashes = {p: r.spec_hash for p, r in results.items()}
        assert len(set(hashes.values())) == 3, "policies share a hash"

    def test_tracker_churn_crashes_trackers_and_overlay_survives(self):
        from repro.scenarios.runner import _deploy

        spec = recovery_point(0.0, 0.0).with_override(
            "churn_profile.tracker_churn_rate", 0.5)
        dep = _deploy(spec)
        tracker_events = [e for e in dep.churn_events
                          if e.kind == "tracker"]
        assert tracker_events, "rate 0.5 over 4s must draw a crash"
        assert {e.target for e in tracker_events} <= {
            t.name for t in dep.trackers}
        result = run_scenario(spec)
        assert result.ok, result.reason  # line repair + failover held

    def test_rejoined_peer_reregisters_with_a_tracker(self):
        spec = recovery_point(1.2, 1.0, 2011)
        dep, outcome = execute_reference(spec)
        assert outcome.ok
        rejoined = [p for p in dep.peers
                    if p.rejoin_count > 0 and p.alive]
        assert rejoined, "this seed rejoins peers"
        for peer in rejoined:
            assert peer.joined and peer.tracker is not None
