"""Tests for the scenario engine: specs, registry, runner, cache, CLI.

The sweep-runner tests use tiny heat-app predict scenarios so a full
parallel/serial/cache matrix stays cheap — the engine is the subject
here, not the workload.
"""

import json

import pytest

from repro.scenarios import (
    SCENARIOS,
    ResultCache,
    ScenarioResult,
    ScenarioSpec,
    SweepRunner,
    expand_grid,
    get_scenario,
    run_scenario,
    scenario_names,
)
from repro.scenarios.runner import clear_memo
from repro.scenarios.spec import (
    ChurnEventSpec,
    PlatformPlan,
    ProtocolPlan,
    WorkloadPlan,
)


def tiny_spec(**overrides) -> ScenarioSpec:
    """A fast predict scenario (small heat instance, 4-host cluster)."""
    defaults = dict(
        name="tiny",
        kind="predict",
        platform=PlatformPlan(kind="cluster", n_hosts=4),
        workload=WorkloadPlan(app="heat", n=64, nit=30, level="O1"),
        n_peers=2,
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


@pytest.fixture(autouse=True)
def fresh_memo():
    """Each test starts with an empty in-process memo."""
    clear_memo()
    yield
    clear_memo()


class TestSpec:
    def test_hash_is_stable_across_processes(self):
        """The hash is content-derived: a hard-coded value pins it so
        accidental hash-scheme changes (which would orphan every
        on-disk cache) are caught.  If this fails because you bumped
        SCHEMA_VERSION or repro.__version__, updating the constant is
        the deliberate acknowledgment that existing caches invalidate.
        """
        spec = ScenarioSpec(name="x")
        assert spec.spec_hash() == "5c8dd843d1a1a33f"
        rebuilt = ScenarioSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        )
        assert rebuilt.spec_hash() == spec.spec_hash()

    def test_name_excluded_from_hash(self):
        a = tiny_spec(name="a")
        b = tiny_spec(name="completely-different")
        assert a.spec_hash() == b.spec_hash()

    def test_any_field_change_changes_hash(self):
        from repro.scenarios.spec import (
            ChurnProfile,
            RecoveryPlan,
            TcpPlan,
            TimerPlan,
        )

        base = tiny_spec()
        variants = [
            tiny_spec(n_peers=4),
            tiny_spec(seed=1),
            tiny_spec(workload=WorkloadPlan(app="heat", n=64, nit=31,
                                            level="O1")),
            tiny_spec(platform=PlatformPlan(kind="cluster", n_hosts=5)),
            tiny_spec(protocol=ProtocolPlan(cmax=8)),
            tiny_spec(churn=(ChurnEventSpec(1.0, "server-down"),)),
            tiny_spec(host_policy="spread"),
            tiny_spec(tcp=TcpPlan(window=65536.0)),
            tiny_spec(timers=TimerPlan(peer_expiry=90.0)),
            tiny_spec(churn_profile=ChurnProfile(rate=0.5)),
            tiny_spec(churn_profile=ChurnProfile(rate=0.5, rejoin_rate=1.0)),
            tiny_spec(churn_profile=ChurnProfile(tracker_churn_rate=0.1)),
            tiny_spec(churn_profile=ChurnProfile(
                coordinator_churn_rate=0.4)),
            tiny_spec(churn_profile=ChurnProfile(rejoin_rate=1.0),
                      recovery=RecoveryPlan(election=True)),
            tiny_spec(selection_policy="failure_aware"),
            tiny_spec(time_limit=100.0),
        ]
        hashes = {base.spec_hash()} | {v.spec_hash() for v in variants}
        assert len(hashes) == len(variants) + 1

    def test_round_trip_through_dict(self):
        spec = tiny_spec(
            churn=(ChurnEventSpec(2.0, "tracker", "tracker-0"),),
            protocol=ProtocolPlan(scheme="async", grouping="random"),
        )
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            ScenarioSpec(name="x", kind="dream")
        with pytest.raises(ValueError, match="app"):
            WorkloadPlan(app="tetris")
        with pytest.raises(ValueError, match="speed_min"):
            PlatformPlan(speed_min=1.0, speed_max=0.5)

    def test_with_override_dotted(self):
        spec = tiny_spec()
        assert spec.with_override("workload.level", "O3").workload.level == "O3"
        assert spec.with_override("n_peers", 8).n_peers == 8
        with pytest.raises(KeyError):
            spec.with_override("workload.flavour", 1)
        with pytest.raises(KeyError):
            spec.with_override("nonsense", 1)


class TestRegistry:
    def test_at_least_ten_named_scenarios(self):
        assert len(SCENARIOS) >= 10

    def test_every_entry_expands_and_hashes(self):
        for name in scenario_names():
            entry = get_scenario(name)
            points = entry.points()
            assert len(points) == entry.n_points >= 1
            hashes = {p.spec_hash() for p in points}
            assert len(hashes) == len(points), f"{name}: duplicate points"

    def test_covers_all_kinds_and_both_apps(self):
        kinds = {e.base.kind for e in SCENARIOS.values()}
        assert kinds == {"reference", "predict", "deploy"}
        apps = {e.base.workload.app for e in SCENARIOS.values()}
        assert apps == {"obstacle", "heat"}

    def test_unknown_name_helpful_error(self):
        with pytest.raises(KeyError, match="fig9-cluster-o0"):
            get_scenario("nope")

    def test_experiment_specs_share_registry_cache_keys(self):
        """The stage runners and the registry draw from one spec space:
        the same (platform, workload, peers) point must hash to the
        same cache entry wherever it is built."""
        from repro.experiments import heterogeneous, stage1, stage2

        fig10 = SCENARIOS["fig10-cluster-o3"].points()
        assert (stage1.prediction_spec(2, "O3").spec_hash()
                == fig10[0].spec_hash())
        fig11_xdsl = SCENARIOS["fig11-xdsl-o0"].points()
        assert (stage2.prediction_spec("xdsl", 4, "O0").spec_hash()
                == fig11_xdsl[1].spec_hash())
        hetero = SCENARIOS["hetero-fastest"].points()
        assert (heterogeneous.prediction_spec(8, "O0", "fastest").spec_hash()
                == hetero[2].spec_hash())


class TestExpandGrid:
    def test_cartesian_product_and_names(self):
        base = tiny_spec(name="base")
        specs = expand_grid(
            base, {"n_peers": (2, 4), "workload.level": ("O0", "O1")}
        )
        assert len(specs) == 4
        assert specs[0].name == "base[n_peers=2,workload.level=O0]"
        assert {(s.n_peers, s.workload.level) for s in specs} == {
            (2, "O0"), (2, "O1"), (4, "O0"), (4, "O1"),
        }

    def test_empty_grid_is_base(self):
        base = tiny_spec()
        assert expand_grid(base, {}) == [base]


class TestRunnerAndCache:
    def grid_specs(self, n_levels=3):
        return expand_grid(
            tiny_spec(), {"n_peers": (2, 4), "workload.level":
                          ("O0", "O1", "O2", "O3")[:n_levels]}
        )

    def test_cache_hit_miss_accounting(self, tmp_path):
        specs = self.grid_specs(2)  # 4 points
        runner = SweepRunner(cache_dir=tmp_path)
        runner.run(specs, parallel=False)
        assert (runner.hits, runner.misses) == (0, 4)
        assert len(runner.cache) == 4

        # same process, fresh runner: memo serves everything
        second = SweepRunner(cache_dir=tmp_path)
        second.run(specs, parallel=False)
        assert (second.hits, second.misses) == (4, 0)

        # cold process simulated: memo cleared, disk serves everything
        clear_memo()
        third = SweepRunner(cache_dir=tmp_path)
        third.run(specs, parallel=False)
        assert (third.hits, third.misses) == (4, 0)
        assert third.cache_ratio == 1.0

    def test_cached_result_is_byte_identical(self, tmp_path):
        spec = tiny_spec()
        fresh = run_scenario(spec).canonical_json()
        runner = SweepRunner(cache_dir=tmp_path)
        runner.run([spec], parallel=False)
        clear_memo()
        from_disk = SweepRunner(cache_dir=tmp_path).run(
            [spec], parallel=False
        )[0]
        assert from_disk.canonical_json() == fresh

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        spec = tiny_spec()
        cache = ResultCache(tmp_path)
        (tmp_path / f"{spec.spec_hash()}.json").write_text("{not json")
        assert cache.get(spec) is None

    def test_duplicate_specs_computed_once(self, tmp_path):
        spec = tiny_spec()
        runner = SweepRunner(cache_dir=tmp_path)
        results = runner.run([spec, spec, spec], parallel=False)
        assert len(results) == 3
        assert runner.misses == 1  # one computation serves all slots
        assert results[0].canonical_json() == results[2].canonical_json()

    def test_parallel_equals_serial(self, tmp_path):
        """The acceptance contract: a parallel sweep returns exactly
        the serial results, point for point."""
        specs = self.grid_specs(3)  # 6 points
        serial = [run_scenario(s) for s in specs]

        clear_memo()
        runner = SweepRunner(cache_dir=tmp_path / "par", max_workers=4)
        parallel = runner.run(specs, parallel=True)
        assert runner.misses == len(specs)

        assert [r.canonical_json() for r in parallel] == [
            r.canonical_json() for r in serial
        ]

    def test_second_sweep_served_from_disk(self, tmp_path):
        """≥90% of a repeated 12-point sweep comes from the cache (here:
        all of it)."""
        specs = expand_grid(
            tiny_spec(),
            {"n_peers": (2, 4), "workload.level": ("O0", "O1", "O2"),
             "workload.nit": (30, 40)},
        )
        assert len(specs) == 12
        first = SweepRunner(cache_dir=tmp_path, max_workers=4)
        first.run(specs)
        clear_memo()
        again = SweepRunner(cache_dir=tmp_path, max_workers=4)
        again.run(specs)
        assert again.cache_ratio >= 0.9
        assert again.misses == 0


class TestScenarioExecution:
    def test_deploy_scenario_reports_overlay_metrics(self):
        spec = ScenarioSpec(
            name="deploy-tiny", kind="deploy",
            platform=PlatformPlan(kind="cluster", n_hosts=8), n_peers=8,
            n_zones=2,
        )
        result = run_scenario(spec)
        assert result.ok
        assert result.metrics["n_peers"] == 8
        assert result.metrics["control_messages"] > 0

    def test_oversubscribed_fails_gracefully(self):
        result = run_scenario(SCENARIOS["oversubscribed-allocation"].base)
        assert not result.ok
        assert "collected only" in result.reason

    def test_churn_under_load_completes(self):
        result = run_scenario(SCENARIOS["churn-under-load"].base)
        assert result.ok, result.reason
        assert result.t > 2.0  # churn events at 0.5/1.0/2.0 land mid-run

    def test_random_grouping_slower_than_proximity(self):
        prox = run_scenario(SCENARIOS["heterogeneous-multisite"].base)
        rand = run_scenario(SCENARIOS["random-grouping"].base)
        assert prox.ok and rand.ok
        assert rand.metrics["makespan"] > prox.metrics["makespan"]


class TestCli:
    def test_list_names_every_scenario(self, capsys):
        from repro.scenarios.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_show_dumps_spec_json(self, capsys):
        from repro.scenarios.cli import main

        assert main(["show", "fig10-cluster-o3"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["base"]["kind"] == "predict"
        assert len(payload["points"]) == 5

    def test_sweep_runs_grid_with_cache(self, tmp_path, capsys):
        from repro.scenarios.cli import main

        argv = [
            "sweep", "xdsl-daisy-chain",
            "--set", "n_peers=2",
            "--set", "workload.n=64", "--set", "workload.nit=30",
            "--cache-dir", str(tmp_path), "--serial",
        ]
        assert main(argv) == 0
        assert "1 executed" in capsys.readouterr().out
        clear_memo()
        assert main(argv) == 0
        assert "1 from cache" in capsys.readouterr().out

    def test_sweep_then_compare_round_trip(self, tmp_path, capsys):
        """Two CLI sweeps, one compare: the documented churn workflow."""
        from repro.scenarios.cli import main

        common = [
            "sweep", "xdsl-daisy-chain",
            "--set", "workload.n=64", "--set", "workload.nit=30",
            "--cache-dir", str(tmp_path), "--serial",
        ]
        assert main(common + ["--set", "n_peers=2",
                              "--label", "two"]) == 0
        assert main(common + ["--set", "n_peers=2,4",
                              "--label", "scale"]) == 0
        capsys.readouterr()
        assert main(["compare", "two", "scale",
                     "--cache-dir", str(tmp_path)]) == 0
        report = capsys.readouterr().out
        assert "`two` vs `scale`" in report
        assert "n_peers=2" in report and "n_peers=4" in report

        out = tmp_path / "diff.json"
        assert main(["compare", "two", "scale", "--format", "json",
                     "--out", str(out),
                     "--cache-dir", str(tmp_path)]) == 0
        payload = json.loads(out.read_text())
        assert "n_peers" in payload["shared_axes"]
        assert len(payload["rows"]) == 2

    def test_compare_unknown_label_is_usage_error(self, tmp_path, capsys):
        from repro.scenarios.cli import main

        assert main(["compare", "nope", "also-nope",
                     "--cache-dir", str(tmp_path)]) == 2
        assert "no sweep manifest" in capsys.readouterr().err

    def test_bad_label_rejected_before_running(self, tmp_path, capsys):
        from repro.scenarios.cli import main

        assert main(["run", "flat-allocation", "--cache-dir",
                     str(tmp_path), "--label", "a/b"]) == 2
        assert "--label" in capsys.readouterr().err

    def test_label_with_no_cache_rejected(self, tmp_path, capsys):
        from repro.scenarios.cli import main

        assert main(["run", "flat-allocation", "--no-cache",
                     "--label", "x"]) == 2
        assert "--no-cache" in capsys.readouterr().err

    def test_compare_label_not_shadowed_by_cwd_file(
        self, tmp_path, capsys, monkeypatch
    ):
        """A stray same-named file in the cwd must not shadow a
        recorded sweep, and a non-manifest path is a clean error."""
        from repro.scenarios.cli import main

        argv = [
            "sweep", "xdsl-daisy-chain",
            "--set", "n_peers=2", "--set", "workload.n=64",
            "--set", "workload.nit=30",
            "--cache-dir", str(tmp_path), "--serial", "--label", "lbl",
        ]
        assert main(argv) == 0
        capsys.readouterr()
        workdir = tmp_path / "cwd"
        workdir.mkdir()
        (workdir / "lbl").write_text("not json")
        monkeypatch.chdir(workdir)
        assert main(["compare", "lbl", "lbl",
                     "--cache-dir", str(tmp_path)]) == 0
        assert "`lbl` vs `lbl`" in capsys.readouterr().out
        assert main(["compare", str(workdir / "lbl"), "lbl",
                     "--cache-dir", str(tmp_path)]) == 2
        assert "not a sweep manifest" in capsys.readouterr().err

    def test_labelless_manifest_is_usage_error(self, tmp_path, capsys):
        from repro.scenarios.cli import main

        bad = tmp_path / "foo.json"
        bad.write_text('{"points": []}')
        assert main(["compare", str(bad), str(bad),
                     "--cache-dir", str(tmp_path)]) == 2
        assert "not a sweep manifest" in capsys.readouterr().err
