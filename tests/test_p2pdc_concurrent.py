"""Concurrent task submission: reservation conflicts and exclusivity.

The paper: "Peers reserved for a computation are considered busy and
cannot be reserved for another computation."  Two submitters racing
for the same peer pool must never share a peer; losers re-reserve
spares or fail cleanly.
"""

import pytest

from repro.p2pdc import TaskSpec, WorkloadSpec, deploy_overlay
from repro.p2pdc.allocation import Submitter
from repro.platforms import build_cluster


def workload(nit=20, iter_time=0.01):
    return WorkloadSpec(
        name="concurrent", nit=nit, halo_bytes=512,
        iteration_time=lambda r, n: iter_time, check_every=0,
        noise_frac=0.0,
    )


def second_submitter(dep):
    overlay = dep.overlay
    sub2 = Submitter(overlay, "submitter-2", _ip("10.0.250.249"),
                     overlay.platform.hosts[1])
    overlay.peers.append(sub2)
    sig = sub2.join_overlay([t.ref for t in dep.trackers])
    overlay.run_until(sig, limit=1e5)
    return sub2


def _ip(text):
    from repro.p2pdc import IPv4

    return IPv4.parse(text)


class TestConcurrentTasks:
    def test_disjoint_peer_sets(self):
        """Both tasks fit: they must run on disjoint peers."""
        dep = deploy_overlay(build_cluster(16), n_peers=16, n_zones=2)
        sub2 = second_submitter(dep)
        sig1 = dep.submitter.submit(TaskSpec(workload=workload(), n_peers=6,
                                             spares=3))
        sig2 = sub2.submit(TaskSpec(workload=workload(), n_peers=6, spares=3))
        dep.overlay.run_until(sig1, limit=1e6)
        dep.overlay.run_until(sig2, limit=1e6)
        out1, out2 = sig1.value, sig2.value
        assert out1.ok, out1.reason
        assert out2.ok, out2.reason
        used1 = {r.name for r in out1.ranks}
        used2 = {r.name for r in out2.ranks}
        assert not (used1 & used2), f"peers shared: {used1 & used2}"

    def test_oversubscription_one_loses_cleanly(self):
        """Pool of 10 peers, two tasks wanting 7 each: at most one can
        win; the loser reports a reason instead of hanging or sharing."""
        dep = deploy_overlay(build_cluster(10), n_peers=10, n_zones=2)
        sub2 = second_submitter(dep)
        spec = TaskSpec(workload=workload(nit=60), n_peers=7, spares=0,
                        task_timeout=1e4)
        sig1 = dep.submitter.submit(spec)
        sig2 = sub2.submit(spec)
        dep.overlay.run_until(sig1, limit=1e6)
        dep.overlay.run_until(sig2, limit=1e6)
        out1, out2 = sig1.value, sig2.value
        winners = [o for o in (out1, out2) if o.ok]
        losers = [o for o in (out1, out2) if not o.ok]
        assert len(winners) <= 1
        for loser in losers:
            assert loser.reason  # explicit failure, not a hang
        if winners:
            # the winner's peers were exclusively reserved
            used = [r.name for r in winners[0].ranks]
            assert len(used) == len(set(used)) == 7

    def test_sequential_after_concurrent_pool_recovers(self):
        """After both tasks finish, the pool is fully free again."""
        dep = deploy_overlay(build_cluster(16), n_peers=16, n_zones=2)
        sub2 = second_submitter(dep)
        sig1 = dep.submitter.submit(TaskSpec(workload=workload(nit=5),
                                             n_peers=5, spares=2))
        sig2 = sub2.submit(TaskSpec(workload=workload(nit=5), n_peers=5,
                                    spares=2))
        dep.overlay.run_until(sig1, limit=1e6)
        dep.overlay.run_until(sig2, limit=1e6)
        dep.overlay.run(until=dep.overlay.now + 5)
        assert not any(p.busy for p in dep.peers if p.role == "peer"
                       and not p.name.startswith("submitter"))
        # and a third task can still use (almost) the whole pool
        sig3 = dep.submitter.submit(TaskSpec(workload=workload(nit=3),
                                             n_peers=12, spares=2))
        dep.overlay.run_until(sig3, limit=1e6)
        assert sig3.value.ok, sig3.value.reason
