"""The README's quickstart snippet and CLI examples must actually run.

This file is the CI `docs` check: the python block executes, and every
`python -m repro.scenarios …` line in a bash block must parse against
the real argument parser, name a real scenario, and use real spec
fields — so the README cannot drift from the CLI.
"""

import re
import shlex
from pathlib import Path

README = Path(__file__).parent.parent / "README.md"


def test_readme_quickstart_executes(capsys):
    text = README.read_text()
    blocks = re.findall(r"```python\n(.*?)```", text, re.DOTALL)
    assert blocks, "README lost its python quickstart block"
    namespace: dict = {}
    exec(compile(blocks[0], "<README quickstart>", "exec"), namespace)
    out = capsys.readouterr().out.strip().splitlines()
    # two predictions printed, LAN slower than the cluster
    t_cluster, t_lan = float(out[-2]), float(out[-1])
    assert 0 < t_cluster < t_lan


def test_readme_mentions_all_deliverable_paths():
    text = README.read_text()
    for path in ("DESIGN.md", "EXPERIMENTS.md", "benchmarks/", "examples/",
                 "tests/"):
        assert path in text


def test_docs_references_resolve_both_ways():
    """Every `docs/<name>.md` referenced from README/EXPERIMENTS/docs
    exists on disk, and every guide that ships is reachable from the
    README — a renamed or orphaned workflow guide fails the docs job."""
    root = README.parent
    sources = [README, root / "EXPERIMENTS.md"] + \
        sorted((root / "docs").glob("*.md"))
    referenced = set()
    for source in sources:
        referenced.update(re.findall(r"docs/([\w-]+\.md)", source.read_text()))
    assert referenced, "no docs references found anywhere"
    for name in sorted(referenced):
        assert (root / "docs" / name).is_file(), f"dangling link: docs/{name}"
    shipped = {p.name for p in (root / "docs").glob("*.md")}
    readme_refs = set(re.findall(r"docs/([\w-]+\.md)", README.read_text()))
    assert shipped <= readme_refs, \
        f"guides unreachable from README: {sorted(shipped - readme_refs)}"
    assert "fault-grid.md" in readme_refs


def _readme_cli_lines(module="repro.scenarios"):
    """`python -m <module> …` commands from README bash blocks, with
    backslash continuations joined, comments and env-var prefixes
    stripped."""
    blocks = re.findall(r"```bash\n(.*?)```", README.read_text(), re.DOTALL)
    lines, buf = [], ""
    for block in blocks:
        for raw in block.splitlines():
            line = (buf + " " + raw.strip()).strip() if buf else raw.strip()
            buf = ""
            if line.endswith("\\"):
                buf = line[:-1].strip()
                continue
            line = line.split("#", 1)[0].strip()
            if line.startswith("PYTHONPATH=src "):
                line = line[len("PYTHONPATH=src "):]
            if line.endswith(" &"):
                line = line[:-2]
            if line.startswith(f"python -m {module}"):
                lines.append(line)
    return lines


def test_readme_cli_examples_stay_runnable(capsys):
    """Every scenarios-CLI example parses, names a real scenario, and
    uses real spec fields; the cheap ones execute for real."""
    from repro.scenarios import get_scenario
    from repro.scenarios.cli import _parse_sets, build_parser, main

    lines = _readme_cli_lines()
    assert lines, "README lost its scenarios-CLI examples"
    parser = build_parser()
    for line in lines:
        argv = shlex.split(line)[3:]  # drop `python -m repro.scenarios`
        args = parser.parse_args(argv)  # SystemExit(2) = stale example
        if args.command in ("run", "sweep"):
            entry = get_scenario(args.name)  # KeyError = stale name
            for path, values in _parse_sets(
                getattr(args, "set", None) or []
            ).items():
                entry.base.with_override(path, values[0])  # KeyError = field
        if args.command in ("list", "show"):
            assert main(argv) == 0
            capsys.readouterr()


def test_readme_serve_examples_stay_parseable():
    """Every serve-CLI example parses against the real parser, and its
    --set overrides name real query fields."""
    from repro.scenarios.cli import _parse_value
    from repro.serve.cli import build_parser
    from repro.serve.query import QuerySpec

    lines = _readme_cli_lines(module="repro.serve")
    assert lines, "README lost its serve-CLI examples"
    parser = build_parser()
    probe = QuerySpec(deadline=1.0)
    for line in lines:
        argv = shlex.split(line)[3:]  # drop `python -m repro.serve`
        args = parser.parse_args(argv)  # SystemExit(2) = stale example
        for pair in getattr(args, "set", None) or []:
            path, _, value = pair.partition("=")
            probe.with_override(path, _parse_value(value))  # KeyError = stale


def test_readme_fleet_examples_stay_parseable():
    """Every fleet-CLI example parses against the real parser; `run`
    examples name a real scenario and real spec fields."""
    from repro.fleet.cli import build_parser
    from repro.params import parse_grid_sets
    from repro.scenarios import get_scenario

    lines = _readme_cli_lines(module="repro.fleet")
    assert lines, "README lost its fleet-CLI examples"
    parser = build_parser()
    for line in lines:
        argv = shlex.split(line)[3:]  # drop `python -m repro.fleet`
        args = parser.parse_args(argv)  # SystemExit(2) = stale example
        if args.command == "run":
            entry = get_scenario(args.name)  # KeyError = stale name
            for path, values in parse_grid_sets(
                getattr(args, "set", None) or []
            ).items():
                entry.base.with_override(path, values[0])  # KeyError
