"""The README's quickstart snippet must actually run."""

import re
from pathlib import Path

README = Path(__file__).parent.parent / "README.md"


def test_readme_quickstart_executes(capsys):
    text = README.read_text()
    blocks = re.findall(r"```python\n(.*?)```", text, re.DOTALL)
    assert blocks, "README lost its python quickstart block"
    namespace: dict = {}
    exec(compile(blocks[0], "<README quickstart>", "exec"), namespace)
    out = capsys.readouterr().out.strip().splitlines()
    # two predictions printed, LAN slower than the cluster
    t_cluster, t_lan = float(out[-2]), float(out[-1])
    assert 0 < t_cluster < t_lan


def test_readme_mentions_all_deliverable_paths():
    text = README.read_text()
    for path in ("DESIGN.md", "EXPERIMENTS.md", "benchmarks/", "examples/",
                 "tests/"):
        assert path in text
