"""Tests for IPv4 handling and the IP-based proximity metric."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.p2pdc import IPv4, closest, common_prefix_len, proximity
from repro.p2pdc.messages import NodeRef

ips = st.integers(min_value=0, max_value=0xFFFFFFFF).map(IPv4)


class TestParsing:
    def test_parse_and_str_round_trip(self):
        for text in ("0.0.0.0", "145.82.1.129", "255.255.255.255", "10.0.3.7"):
            assert str(IPv4.parse(text)) == text

    def test_malformed_rejected(self):
        for bad in ("1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "-1.0.0.0"):
            with pytest.raises(ValueError):
                IPv4.parse(bad)

    def test_ordering(self):
        assert IPv4.parse("10.0.0.1") < IPv4.parse("10.0.0.2")
        assert IPv4.parse("9.255.255.255") < IPv4.parse("10.0.0.0")


class TestPaperExample:
    """§III-A2's worked example must hold exactly."""

    def test_prefix_lengths(self):
        p1 = IPv4.parse("145.82.1.1")
        p2 = IPv4.parse("145.82.1.129")
        p3 = IPv4.parse("145.83.56.74")
        assert common_prefix_len(p1, p2) == 24
        assert common_prefix_len(p1, p3) == 15

    def test_p2_closer_than_p3(self):
        p1 = IPv4.parse("145.82.1.1")
        p2 = IPv4.parse("145.82.1.129")
        p3 = IPv4.parse("145.83.56.74")
        assert proximity(p1, p2) > proximity(p1, p3)


class TestPrefixProperties:
    @given(ips)
    def test_self_proximity_is_32(self, a):
        assert common_prefix_len(a, a) == 32

    @given(ips, ips)
    def test_symmetry(self, a, b):
        assert common_prefix_len(a, b) == common_prefix_len(b, a)

    @given(ips, ips)
    def test_range(self, a, b):
        assert 0 <= common_prefix_len(a, b) <= 32

    @given(ips, ips, ips)
    def test_triangle_like_property(self, a, b, c):
        """Prefix metric property: cpl(a,c) >= min(cpl(a,b), cpl(b,c))."""
        assert common_prefix_len(a, c) >= min(
            common_prefix_len(a, b), common_prefix_len(b, c)
        )

    @given(ips, ips)
    def test_prefix_matches_xor_definition(self, a, b):
        expected = 32
        for bit in range(31, -1, -1):
            if (a.value >> bit) & 1 != (b.value >> bit) & 1:
                expected = 31 - bit
                break
        assert common_prefix_len(a, b) == expected


class TestClosest:
    def ref(self, text):
        ip = IPv4.parse(text)
        return NodeRef(text, ip, "h")

    def test_picks_longest_prefix(self):
        target = IPv4.parse("145.82.1.1")
        candidates = [self.ref("145.82.1.129"), self.ref("145.83.56.74")]
        assert closest(target, candidates).name == "145.82.1.129"

    def test_deterministic_tie_break(self):
        target = IPv4.parse("10.0.0.100")
        a = self.ref("10.0.0.96")
        b = self.ref("10.0.0.104")
        # same /28... compare numeric distance: 4 each → lowest IP wins
        pick1 = closest(target, [a, b])
        pick2 = closest(target, [b, a])
        assert pick1.name == pick2.name

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            closest(IPv4.parse("1.1.1.1"), [])
