"""End-to-end task lifecycle: collection, allocation, computation."""

import pytest

from repro.p2psap import Scheme
from repro.p2pdc import (
    ChurnPlan,
    TaskSpec,
    WorkloadSpec,
    deploy_overlay,
    group_by_proximity,
    group_randomly,
    pick_coordinator,
)
from repro.platforms import build_cluster


def workload(nit=6, check_every=3, scheme=Scheme.SYNC, iter_time=0.005,
             **kw):
    return WorkloadSpec(
        name="toy",
        nit=nit,
        halo_bytes=1024,
        iteration_time=lambda rank, n: iter_time,
        check_every=check_every,
        scheme=scheme,
        noise_frac=0.0,
        **kw,
    )


def run_task(dep, task):
    sig = dep.submitter.submit(task)
    dep.overlay.run_until(sig, limit=1e6)
    return sig.value


class TestGrouping:
    def make_refs(self, ips):
        from repro.p2pdc import IPv4
        from repro.p2pdc.messages import NodeRef

        return [NodeRef(f"n{i}", IPv4.parse(ip), "h") for i, ip in enumerate(ips)]

    def test_groups_respect_cmax(self):
        refs = self.make_refs([f"10.0.{i}.1" for i in range(70)])
        groups = group_by_proximity(refs, cmax=32)
        assert all(len(g) <= 32 for g in groups)
        assert sum(len(g) for g in groups) == 70
        assert len(groups) == 3  # ceil(70/32)

    def test_groups_are_ip_contiguous(self):
        refs = self.make_refs(
            ["10.1.0.1", "10.0.0.1", "10.1.0.2", "10.0.0.2", "10.1.0.3", "10.0.0.3"]
        )
        groups = group_by_proximity(refs, cmax=3)
        prefixes = [{str(r.ip).rsplit(".", 2)[0] for r in g} for g in groups]
        assert prefixes == [{"10.0"}, {"10.1"}]

    def test_random_grouping_differs(self):
        import random

        refs = self.make_refs([f"10.{i % 4}.0.{i}" for i in range(1, 40)])
        prox = group_by_proximity(refs, 10)
        rand = group_randomly(refs, 10, random.Random(1))
        assert [len(g) for g in prox] == [len(g) for g in rand]
        assert any(
            {r.name for r in a} != {r.name for r in b}
            for a, b in zip(prox, rand)
        )

    def test_coordinator_is_lowest_ip(self):
        refs = self.make_refs(["10.0.0.9", "10.0.0.3", "10.0.0.7"])
        assert pick_coordinator(refs).name == "n1"

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            pick_coordinator([])


class TestTaskLifecycle:
    def test_simple_task_completes(self):
        dep = deploy_overlay(build_cluster(8), n_peers=8, n_zones=2)
        outcome = run_task(dep, TaskSpec(workload=workload(), n_peers=4))
        assert outcome.ok, outcome.reason
        assert len(outcome.results) == 4
        assert [r.rank for r in outcome.results] == [0, 1, 2, 3]

    def test_iterations_completed(self):
        dep = deploy_overlay(build_cluster(8), n_peers=8, n_zones=2)
        outcome = run_task(dep, TaskSpec(workload=workload(nit=6), n_peers=4))
        assert all(r.iterations_done == 6 for r in outcome.results)

    def test_timings_recorded_in_order(self):
        dep = deploy_overlay(build_cluster(8), n_peers=8, n_zones=2)
        outcome = run_task(dep, TaskSpec(workload=workload(), n_peers=4))
        t = outcome.timings
        assert t.submitted_at <= t.collected_at <= t.allocated_at
        assert t.allocated_at <= t.completed_at
        assert outcome.makespan > 0

    def test_groups_bounded_by_cmax(self):
        from repro.p2pdc import OverlayConfig

        dep = deploy_overlay(
            build_cluster(12), n_peers=12, n_zones=2,
            config=OverlayConfig(cmax=4),
        )
        outcome = run_task(dep, TaskSpec(workload=workload(), n_peers=10))
        assert outcome.ok, outcome.reason
        assert all(len(g) <= 4 for g in outcome.groups)
        assert len(outcome.coordinators) == len(outcome.groups)

    def test_peers_freed_after_task(self):
        dep = deploy_overlay(build_cluster(8), n_peers=8, n_zones=2)
        outcome = run_task(dep, TaskSpec(workload=workload(), n_peers=4))
        assert outcome.ok
        dep.overlay.run(until=dep.overlay.now + 5)
        used = {r.name for r in outcome.ranks}
        busy = [p for p in dep.peers if p.name in used and p.busy]
        assert busy == []

    def test_two_sequential_tasks_reuse_peers(self):
        dep = deploy_overlay(build_cluster(8), n_peers=8, n_zones=2)
        out1 = run_task(dep, TaskSpec(workload=workload(), n_peers=4))
        out2 = run_task(dep, TaskSpec(workload=workload(), n_peers=4))
        assert out1.ok and out2.ok

    def test_insufficient_peers_reported(self):
        dep = deploy_overlay(build_cluster(4), n_peers=4, n_zones=2)
        outcome = run_task(dep, TaskSpec(workload=workload(), n_peers=32))
        assert not outcome.ok
        assert "collected only" in outcome.reason

    def test_collection_expands_beyond_first_zone(self):
        dep = deploy_overlay(build_cluster(16), n_peers=16, n_zones=4)
        outcome = run_task(dep, TaskSpec(workload=workload(), n_peers=12))
        assert outcome.ok, outcome.reason
        assert len(set(outcome.collection.trackers_queried)) >= 3

    def test_requirements_filter_peers(self):
        dep = deploy_overlay(build_cluster(8), n_peers=8, n_zones=2)
        # ask for more speed than any host has
        spec = TaskSpec(workload=workload(), n_peers=4,
                        requirements={"speed": 1e18})
        outcome = run_task(dep, spec)
        assert not outcome.ok

    def test_early_stop_on_convergence(self):
        w = WorkloadSpec(
            name="conv", nit=50, halo_bytes=256,
            iteration_time=lambda r, n: 0.002, check_every=2,
            noise_frac=0.0, residual=lambda it: 1.0 / (it + 1), tol=0.2,
        )
        dep = deploy_overlay(build_cluster(8), n_peers=8, n_zones=2)
        outcome = run_task(dep, TaskSpec(workload=w, n_peers=4))
        assert outcome.ok, outcome.reason
        # residual 1/(it+1) <= 0.2 at it=4 → check at iteration 6 stops
        assert all(r.iterations_done < 50 for r in outcome.results)

    def test_async_scheme_runs_more_iterations(self):
        dep = deploy_overlay(build_cluster(8), n_peers=8, n_zones=2)
        w = workload(nit=8, scheme=Scheme.ASYNC, check_every=4)
        outcome = run_task(dep, TaskSpec(workload=w, n_peers=4))
        assert outcome.ok, outcome.reason
        assert all(r.iterations_done == 10 for r in outcome.results)  # 8×1.25

    def test_flat_allocation_baseline(self):
        dep = deploy_overlay(build_cluster(8), n_peers=8, n_zones=2)
        sig = dep.submitter.submit_flat(TaskSpec(workload=workload(), n_peers=4))
        dep.overlay.run_until(sig, limit=1e6)
        outcome = sig.value
        assert outcome.ok, outcome.reason
        assert len(outcome.results) == 4

    def test_hierarchical_allocation_faster_than_flat_for_many_peers(self):
        """§III-C's claim: reservation+dispatch in parallel through
        coordinators beats the submitter doing everything serially."""
        def alloc_time(flat):
            dep = deploy_overlay(build_cluster(24), n_peers=24, n_zones=4)
            spec = TaskSpec(workload=workload(nit=1, check_every=0), n_peers=20)
            sig = (dep.submitter.submit_flat(spec) if flat
                   else dep.submitter.submit(spec))
            dep.overlay.run_until(sig, limit=1e6)
            out = sig.value
            assert out.ok, out.reason
            return out.timings.allocation_time

        assert alloc_time(flat=False) < alloc_time(flat=True)


class TestChurnDuringTasks:
    def test_peer_crash_before_reservation_replaced_by_spare(self):
        dep = deploy_overlay(build_cluster(10), n_peers=10, n_zones=2)
        # crash one peer right away; collection may still offer it
        dep.peers[3].crash()
        outcome = run_task(
            dep, TaskSpec(workload=workload(), n_peers=6, spares=3)
        )
        assert outcome.ok, outcome.reason
        assert len(outcome.results) == 6

    def test_peer_crash_mid_computation_fails_task_cleanly(self):
        w = WorkloadSpec(
            name="toy", nit=200, halo_bytes=1024,
            iteration_time=lambda r, n: 0.05, check_every=0,
            noise_frac=0.0, halo_timeout=30.0,
        )
        dep = deploy_overlay(build_cluster(8), n_peers=8, n_zones=2)
        sig = dep.submitter.submit(
            TaskSpec(workload=w, n_peers=6, task_timeout=500.0)
        )
        # run into the middle of the computation, then kill a busy rank
        dep.overlay.run(until=dep.overlay.now + 5.0)
        busy = [p for p in dep.peers if p.busy and p.name != "submitter"]
        assert busy, "expected ranks to be computing by now"
        busy[0].crash()
        dep.overlay.run_until(sig, limit=1e6)
        outcome = sig.value
        assert not outcome.ok
        assert "timed out" in outcome.reason or "missing" in outcome.reason
