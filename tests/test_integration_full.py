"""Cross-module integration tests beyond the main experiment paths."""

import pytest

from repro.apps import heat
from repro.dperf import DPerfPredictor, ScalePlan
from repro.net import TcpModel
from repro.platforms import (
    build_cluster,
    build_multisite,
    parse_platform_xml,
    write_platform_xml,
)
from repro.simx import read_trace_files, replay_traces, write_trace_files


class TestHeatThroughFullPipeline:
    """The second workload (MPI flavour) through every dPerf stage."""

    @pytest.fixture(scope="class")
    def predictor(self):
        return DPerfPredictor(heat.heat_source(), heat.ENTRY)

    def test_end_to_end_prediction(self, predictor):
        result = predictor.predict_end_to_end(
            4, build_cluster(4), opt_level="O1", args=[64, 30], app="heat"
        )
        assert result.t_predicted > 0
        assert result.opt_level == "O1"

    def test_scaled_heat_prediction(self, predictor):
        runs = predictor.execute(2, args=[32, 6])
        plan = ScalePlan(
            env_cal=heat.scale_env(32, 2), env_target=heat.scale_env(256, 2),
            nit_target=100, cycle_len=1, warmup_cycles=2,
        )
        traces = predictor.traces_for(runs, "O2", scale=plan, app="heat")
        assert traces[0].count("compute") > 50
        result = predictor.predict(traces, build_cluster(2))
        assert result.t_predicted > 0

    def test_heat_on_multisite(self, predictor):
        platform = build_multisite(n_sites=2, peers_per_site=2)
        result = predictor.predict_end_to_end(
            4, platform, opt_level="O0", args=[64, 10], app="heat"
        )
        # WAN-separated ranks: comm dominates this tiny workload
        assert max(result.replay.blocked_time) > max(
            result.replay.compute_time
        )


class TestOnDiskWorkflow:
    """dPerf's file-based workflow: traces + platform description on
    disk, then an independent replay from the artifacts alone."""

    def test_predict_from_files(self, tmp_path):
        predictor = DPerfPredictor(heat.heat_source(), heat.ENTRY)
        runs = predictor.execute(2, args=[32, 8])
        traces = predictor.traces_for(runs, "O3", app="heat")
        write_trace_files(traces, tmp_path)
        platform_text = write_platform_xml(build_cluster(2))
        (tmp_path / "platform.xml").write_text(platform_text)

        # a fresh consumer: nothing shared with the predictor
        loaded_traces = read_trace_files(tmp_path, "heat")
        loaded_platform = parse_platform_xml(
            (tmp_path / "platform.xml").read_text()
        )
        direct = predictor.predict(traces, build_cluster(2))
        from_files = replay_traces(
            loaded_traces, loaded_platform, reference_speed=3e9
        )
        assert from_files.makespan == pytest.approx(
            direct.t_predicted, rel=1e-9
        )


class TestHeterogeneousReplay:
    def test_mixed_speed_hosts_shift_makespan(self):
        """Ranks on slower hosts stretch their compute bursts."""
        from repro.net import Host, Topology
        from repro.platforms import PlatformSpec
        from repro.simx import Compute, Trace

        topo = Topology()
        fast = topo.add_node(Host("fast", speed=6e9))
        slow = topo.add_node(Host("slow", speed=1.5e9))
        hub = topo.add_node(Host("hub", speed=3e9))
        topo.add_link(fast, hub, 1e9, 1e-4)
        topo.add_link(slow, hub, 1e9, 1e-4)
        platform = PlatformSpec("mixed", topo, [fast, slow, hub])
        traces = [
            Trace(rank=0, nprocs=2, events=[Compute(3_000_000_000)]),
            Trace(rank=1, nprocs=2, events=[Compute(3_000_000_000)]),
        ]
        res = replay_traces(traces, platform, hosts=[fast, slow],
                            reference_speed=3e9)
        assert res.finish_times[0] == pytest.approx(1.5)   # 2× faster
        assert res.finish_times[1] == pytest.approx(6.0)   # 2× slower
        assert res.makespan == pytest.approx(6.0)


class TestTcpModel:
    def test_rate_cap_formula(self):
        tcp = TcpModel(window=1e6)
        assert tcp.rate_cap(0.01) == pytest.approx(1e6 / 0.02)
        assert tcp.rate_cap(0.0) == float("inf")

    def test_window_matters_on_long_fat_path(self):
        """Same platform, smaller window → slower bulk transfer."""
        from repro.desim import Simulator
        from repro.net import FluidNetwork, Host, Topology

        def transfer_time(window):
            sim = Simulator()
            topo = Topology()
            a, b = topo.add_node(Host("a")), topo.add_node(Host("b"))
            topo.add_link(a, b, 1.25e9, 0.05)  # 10 Gbps, 50 ms
            net = FluidNetwork(sim, topo,
                               tcp=TcpModel(bandwidth_factor=1.0,
                                            window=window))
            done = net.send(a, b, 1e8)
            return sim.run_until_triggered(done).duration

        assert transfer_time(1e6) > 5 * transfer_time(1e9)


class TestChurnPlanValidation:
    def test_invalid_outage_rejected(self):
        from repro.p2pdc import ChurnPlan

        with pytest.raises(ValueError, match="after"):
            ChurnPlan().server_outage(10.0, 5.0)

    def test_unknown_target_reported(self):
        from repro.p2pdc import ChurnPlan, deploy_overlay

        dep = deploy_overlay(build_cluster(4), n_peers=4, n_zones=1)
        ChurnPlan().crash_peer(dep.overlay.now + 1, "ghost").arm(dep.overlay)
        with pytest.raises(KeyError, match="ghost"):
            dep.overlay.run(until=dep.overlay.now + 5)
