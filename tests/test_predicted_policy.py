"""Prediction-guided scheduling: the ``predicted`` policy and its
omniscient-oracle ablation harness.

Four invariant families over the ``prediction-grid`` base:

* **consistency** — at zero error the predicted ordering coincides
  with the oracle ordering on contention-free uniform-latency
  platforms (unit level), and the full-scale reference runs agree to
  the last float (the registry's hetero LAN *is* such a platform);
* **headline** — at zero error ``predicted`` achieves strictly lower
  makespan than ``proximity`` and ``random`` on the heterogeneous
  platform, at every grid seed;
* **robustness** — under the worst degradation (``flip`` at level
  1.0, the exact ranking inversion) completion probability under
  churn is no worse than ``random``'s;
* **regression** — pre-v5 spec dicts parse (policy off), the guard
  pair rejects ``prediction_error`` without the ``predicted`` policy
  at parse *and* deploy time, and serial/parallel execution stays
  byte-identical.

Plus the failure-history seeding round-trip (the reputation store
rides the spec across runs and demonstrably changes first-selection
order) and the gap-report monotonicity headline.
"""

import json

import pytest

from repro.p2pdc import prediction as prediction_mod
from repro.p2pdc import (
    PREDICTION_ERROR_KINDS,
    PredictionError,
    candidate_groups,
    oracle_makespan,
    peer_score,
    predict_makespan,
)
from repro.p2pdc.overlay import OverlayConfig
from repro.scenarios import SCENARIOS, SweepRunner, run_scenario
from repro.scenarios.runner import clear_memo, execute_reference
from repro.scenarios import spec as spec_mod
from repro.scenarios.spec import PredictionErrorPlan, ScenarioSpec
from repro.analysis import SweepData, prediction_gap


PREDICTION_GRID = SCENARIOS["prediction-grid"]


def grid_point(policy: str, seed: int = 2011, **overrides) -> ScenarioSpec:
    spec = PREDICTION_GRID.base.with_override("selection_policy", policy)
    spec = spec.with_override("seed", seed)
    for path, value in overrides.items():
        spec = spec.with_override(path.replace("__", "."), value)
    return spec


class _Workload:
    """The three attributes the makespan model reads, nothing else."""

    def __init__(self, reference_speed=2.0, nit=10.0, per_rank=None):
        self.reference_speed = reference_speed
        self._nit = nit
        self._per_rank = per_rank

    def iteration_time(self, rank, n):
        if self._per_rank is None:
            return 1.0
        return self._per_rank[min(rank, len(self._per_rank) - 1)]

    def effective_nit(self):
        return self._nit


class TestConstantsMirror:
    def test_error_kinds_mirrored_in_spec_layer(self):
        assert spec_mod.PREDICTION_ERROR_KINDS == PREDICTION_ERROR_KINDS

    def test_prediction_policies_registered(self):
        from repro.p2pdc.overlay import SELECTION_POLICIES

        assert "predicted" in SELECTION_POLICIES
        assert "oracle" in SELECTION_POLICIES
        assert SELECTION_POLICIES == spec_mod.SELECTION_POLICIES


class TestPredictionError:
    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            PredictionError(kind="gremlins")
        with pytest.raises(ValueError, match="level"):
            PredictionError(level=-0.1)
        with pytest.raises(ValueError, match="kind"):
            PredictionErrorPlan(kind="gremlins")
        with pytest.raises(ValueError, match="level"):
            PredictionErrorPlan(level=-0.1)

    def test_level_zero_is_inert(self):
        error = PredictionError(kind="flip", level=0.0)
        assert not error.active
        assert error.corrupt(3.0, "a|b") == 3.0
        assert error.skewed_speed(1.5, 3.0) == 1.5

    def test_corruption_is_a_pure_function_of_seed_and_key(self):
        error = PredictionError(kind="noise", level=0.5, seed=7)
        first = error.corrupt(3.0, "a|b")
        assert error.corrupt(3.0, "a|b") == first  # order-independent
        assert error.corrupt(3.0, "a|c") != first
        assert PredictionError(kind="noise", level=0.5,
                               seed=8).corrupt(3.0, "a|b") != first

    def test_flip_at_one_inverts_every_score(self):
        error = PredictionError(kind="flip", level=1.0)
        for key in ("a", "b", "a|b|c"):
            assert error.corrupt(2.5, key) == -2.5

    def test_stale_pulls_speeds_toward_reference(self):
        full = PredictionError(kind="stale", level=1.0)
        assert full.skewed_speed(1.0, 3.0) == pytest.approx(3.0)
        half = PredictionError(kind="stale", level=0.5)
        assert half.skewed_speed(1.0, 4.0) == pytest.approx(2.0)  # sqrt
        # stale never corrupts the score itself
        assert full.corrupt(2.5, "a") == 2.5


class TestCandidateGroups:
    def test_validation_and_small_pools(self):
        with pytest.raises(ValueError, match="group size"):
            candidate_groups(["a", "b"], 0)
        assert candidate_groups(["a", "b"], 2) == [("a", "b")]
        assert candidate_groups(["a"], 3) == [("a",)]

    def test_exhaustive_under_the_cap(self):
        pool = list("abcdef")
        groups = candidate_groups(pool, 3)
        assert len(groups) == 20  # C(6, 3)
        assert len(set(groups)) == 20

    def test_windowed_fallback_keeps_the_best_group_first(self):
        pool = [f"p{i}" for i in range(40)]
        groups = candidate_groups(pool, 8, cap=100)
        assert len(groups) == 40 - 8 + 1
        # window 0 is the individually-best prefix — the argmin group
        # under the max-based model
        assert groups[0] == tuple(pool[:8])

    def test_registry_pool_stays_exhaustive(self):
        import math

        base = PREDICTION_GRID.base
        pool = base.n_peers + base.spares
        assert math.comb(pool, base.n_peers) <= prediction_mod.CANDIDATE_CAP


class TestMakespanModel:
    def test_slowest_member_prices_the_group(self):
        w = _Workload(reference_speed=2.0, nit=10.0)
        members = (("a", 2.0), ("b", 1.0), ("c", 4.0))
        # bursts: 1.0, 2.0, 0.5 — lock-step pays the slowest
        assert predict_makespan(w, members) == pytest.approx(20.0)

    def test_reference_free_model_keeps_the_ordering(self):
        w = _Workload(reference_speed=0.0)
        fast = predict_makespan(w, (("a", 4.0),))
        slow = predict_makespan(w, (("a", 1.0),))
        assert fast < slow

    def test_peer_score_is_the_single_member_makespan(self):
        w = _Workload()
        assert peer_score(w, "a", 1.0) == predict_makespan(w, (("a", 1.0),))
        # defensive fallback without a workload: bare inverse speed
        assert peer_score(None, "a", 4.0) == pytest.approx(0.25)

    def test_oracle_adds_the_halo_coupling_term(self):
        w = _Workload(reference_speed=2.0, nit=10.0)
        members = (("a", 2.0), ("b", 2.0))

        assert oracle_makespan(w, members, lambda x, y: 0.0) == (
            pytest.approx(predict_makespan(w, members)))
        coupled = oracle_makespan(w, members, lambda x, y: 0.5)
        assert coupled == pytest.approx(10.0 * (1.0 + 0.5))

    def test_consistency_uniform_latency_orderings_coincide(self):
        """The consistency property at unit level: on a uniform-latency
        platform the coupling term is a constant offset, so zero-error
        predicted ordering equals oracle ordering over every candidate
        group."""
        w = _Workload(reference_speed=2.0, nit=5.0)
        speeds = {"a": 0.9, "b": 1.4, "c": 2.0, "d": 2.6, "e": 3.1}
        pool = sorted(speeds, key=lambda n: peer_score(w, n, speeds[n]))
        groups = candidate_groups(pool, 3)
        sketch = lambda g: tuple((n, speeds[n]) for n in sorted(g))
        by_predicted = sorted(
            groups, key=lambda g: (predict_makespan(w, sketch(g)), g))
        by_oracle = sorted(
            groups,
            key=lambda g: (oracle_makespan(w, sketch(g),
                                           lambda x, y: 0.125), g))
        assert by_predicted == by_oracle

    def test_nonuniform_latency_can_reorder_the_oracle(self):
        """The property above is *not* vacuous: give one pair a WAN
        link and the oracle disagrees with the compute-only model."""
        w = _Workload(reference_speed=2.0, nit=5.0)
        wan = lambda x, y: 9.0 if {x, y} == {"a", "b"} else 0.0
        near = (("a", 2.0), ("b", 2.0))       # fast but WAN-coupled
        far = (("c", 1.8), ("d", 1.8))        # slower, co-located
        assert predict_makespan(w, near) < predict_makespan(w, far)
        assert oracle_makespan(w, near, wan) > oracle_makespan(w, far, wan)


class TestGuards:
    """Satellite: ``prediction_error`` without the ``predicted``
    policy is rejected at spec parse AND deploy time (the
    election-without-rejoin pattern)."""

    ERROR = dict(kind="flip", level=1.0)

    def test_spec_parse_rejects_error_without_predicted(self):
        with pytest.raises(ValueError, match="prediction_error requires"):
            ScenarioSpec(name="x", selection_policy="proximity",
                         prediction_error=PredictionErrorPlan(**self.ERROR))

    def test_from_dict_goes_through_the_same_guard(self):
        payload = ScenarioSpec(name="x").to_dict()
        payload["prediction_error"] = dict(self.ERROR, seed=2011)
        payload["selection_policy"] = "random"
        with pytest.raises(ValueError, match="prediction_error requires"):
            ScenarioSpec.from_dict(payload)

    def test_deploy_config_rejects_error_without_predicted(self):
        with pytest.raises(ValueError, match="prediction_error requires"):
            OverlayConfig(selection_policy="oracle",
                          prediction_error=PredictionError(**self.ERROR))

    def test_predicted_policy_accepts_the_error(self):
        spec = ScenarioSpec(name="x", selection_policy="predicted",
                            prediction_error=PredictionErrorPlan(
                                **self.ERROR))
        assert spec.prediction_error.active
        cfg = OverlayConfig(selection_policy="predicted",
                            prediction_error=PredictionError(**self.ERROR))
        assert cfg.prediction_error.active

    def test_level_zero_error_is_legal_everywhere(self):
        for policy in ("proximity", "random", "oracle"):
            assert not ScenarioSpec(
                name="x", selection_policy=policy,
            ).prediction_error.active
            OverlayConfig(selection_policy=policy)  # must not raise


class TestSpecRegression:
    def test_pre_v5_dict_parses_with_the_policy_off(self):
        """A v4 manifest dict has neither prediction_error nor
        failure_history; it must parse to the inert defaults."""
        payload = ScenarioSpec(name="x").to_dict()
        payload.pop("prediction_error", None)
        payload.pop("failure_history", None)
        spec = ScenarioSpec.from_dict(payload)
        assert not spec.prediction_error.active
        assert spec.failure_history == ()

    def test_failure_history_round_trips_through_json(self):
        spec = ScenarioSpec(
            name="x", selection_policy="failure_aware",
            failure_history=(("p-1-0", 3), ("p-1-1", 1)),
        )
        rebuilt = ScenarioSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        )
        assert rebuilt == spec
        assert rebuilt.failure_history == (("p-1-0", 3), ("p-1-1", 1))

    def test_failure_history_canonicalized_and_validated(self):
        spec = ScenarioSpec(name="x",
                            failure_history=[["p-0-0", 2.0]])
        assert spec.failure_history == (("p-0-0", 2),)
        with pytest.raises(ValueError, match="failure_history"):
            ScenarioSpec(name="x", failure_history=(("p-0-0", -1),))

    def test_new_fields_change_the_spec_hash(self):
        base = ScenarioSpec(name="x")
        variants = [
            ScenarioSpec(name="x", selection_policy="predicted"),
            ScenarioSpec(name="x", selection_policy="oracle"),
            ScenarioSpec(name="x", selection_policy="predicted",
                         prediction_error=PredictionErrorPlan(
                             kind="noise", level=0.5)),
            ScenarioSpec(name="x", selection_policy="predicted",
                         prediction_error=PredictionErrorPlan(
                             kind="noise", level=0.5, seed=99)),
            ScenarioSpec(name="x", failure_history=(("p-0-0", 1),)),
        ]
        hashes = {base.spec_hash()} | {v.spec_hash() for v in variants}
        assert len(hashes) == len(variants) + 1


class TestRegisteredGrid:
    def test_shape_and_sheets(self):
        assert PREDICTION_GRID.n_points == 30
        points = PREDICTION_GRID.points()
        assert len(points) == 30
        assert len({p.spec_hash() for p in points}) == 30
        assert {p.selection_policy for p in points} == {
            "predicted", "oracle", "proximity", "random"}
        # the error sheets only ever corrupt the predicted policy —
        # every other combination is rejected at parse time
        for p in points:
            if p.prediction_error.active:
                assert p.selection_policy == "predicted"
        kinds = {p.prediction_error.kind for p in points
                 if p.prediction_error.active}
        assert kinds == set(PREDICTION_ERROR_KINDS)

    def test_platform_is_heterogeneous_lan(self):
        plan = PREDICTION_GRID.base.platform
        assert plan.speed_min < plan.speed_max  # real clock spread
        assert plan.kind == "lan"  # uniform latency: consistency holds


class TestHeadline:
    """The acceptance headline on the heterogeneous platform, pinned
    at both grid seeds: predicted strictly beats proximity and random
    at zero error, and agrees with the oracle exactly."""

    SEEDS = (2011, 2013)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_predicted_strictly_beats_blind_policies(self, seed):
        makespans = {
            policy: run_scenario(grid_point(policy, seed)).metrics["makespan"]
            for policy in ("predicted", "proximity", "random")
        }
        assert makespans["predicted"] < makespans["proximity"]
        assert makespans["predicted"] < makespans["random"]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_zero_error_predicted_equals_oracle(self, seed):
        """The full-scale consistency pin: the registry platform has
        uniform link latency, so the compute-only predictor and the
        omniscient oracle choose the same group."""
        predicted = run_scenario(grid_point("predicted", seed))
        oracle = run_scenario(grid_point("oracle", seed))
        assert predicted.metrics["makespan"] == oracle.metrics["makespan"]

    def test_pinned_reference_numbers(self):
        """Hard-coded values: a silent change to the prediction model,
        the hetero speed draw, or the reference-speed scaling moves
        these and must be acknowledged here."""
        predicted = run_scenario(grid_point("predicted", 2011))
        assert predicted.metrics["makespan"] == pytest.approx(
            3.5593, abs=1e-3)
        assert predicted.metrics["prediction_candidates"] == 495.0
        random_ = run_scenario(grid_point("random", 2011))
        assert random_.metrics["makespan"] == pytest.approx(
            4.4246, abs=1e-3)
        assert "prediction_candidates" not in random_.metrics

    def test_oracle_group_survives_in_the_outcome(self):
        dep, outcome = execute_reference(grid_point("predicted", 2011))
        assert outcome.ok
        assert len(outcome.ranks) == PREDICTION_GRID.base.n_peers
        assert dep.overlay.stats.counters["prediction_candidates"] == 495


class TestRobustness:
    """Under the worst degradation — flip at level 1.0, the exact
    ranking inversion — completion probability under churn is no worse
    than the random policy's."""

    SEEDS = (2011, 2013)

    def _probability(self, policy, **overrides):
        done = [
            run_scenario(grid_point(
                policy, seed, churn_profile__rate=1.2, **overrides,
            )).metrics["completed"]
            for seed in self.SEEDS
        ]
        return sum(done) / len(done)

    def test_worst_case_error_completes_no_worse_than_random(self):
        worst = self._probability(
            "predicted",
            prediction_error__kind="flip", prediction_error__level=1.0,
        )
        blind = self._probability("random")
        assert worst >= blind
        assert worst == 1.0  # the grid's churn wave is survivable

    def test_flipped_ranking_still_yields_a_finite_makespan(self):
        result = run_scenario(grid_point(
            "predicted", 2011, churn_profile__rate=1.2,
            prediction_error__kind="flip", prediction_error__level=1.0,
        ))
        assert result.ok
        assert result.metrics["makespan"] < PREDICTION_GRID.base.time_limit


class TestFailureHistorySeeding:
    """Satellite: the reputation store rides the spec across runs —
    seeding it demonstrably changes the first selection."""

    def _history(self):
        # the submitter sits in the last zone, so collection reaches
        # the p-1-* peers first: penalizing them forces a different
        # first pick
        return tuple((f"p-1-{k}", 3) for k in range(8))

    def test_seeded_history_changes_first_selection_order(self):
        base = grid_point("failure_aware")
        dep_a, outcome_a = execute_reference(base)
        dep_b, outcome_b = execute_reference(
            base.with_override("failure_history", self._history()))
        assert outcome_a.ok and outcome_b.ok
        names_a = {r.name for r in outcome_a.ranks}
        names_b = {r.name for r in outcome_b.ranks}
        assert names_a != names_b
        # the penalized peers were demoted, not merely reshuffled
        penalized = {name for name, _count in self._history()}
        assert len(names_b & penalized) < len(names_a & penalized)

    def test_two_run_regression_through_the_cached_runner(self, tmp_path):
        """The seeded spec hashes differently, runs differently, and
        rehydrates identically from its manifest dict — the round trip
        a cross-run reputation store depends on."""
        base = grid_point("failure_aware")
        seeded = base.with_override("failure_history", self._history())
        assert seeded.spec_hash() != base.spec_hash()
        runner = SweepRunner(cache_dir=tmp_path)
        first, second = runner.run([base, seeded], parallel=False)
        assert first.metrics["makespan"] != second.metrics["makespan"]
        rebuilt = ScenarioSpec.from_dict(
            json.loads(json.dumps(seeded.to_dict())))
        assert rebuilt.spec_hash() == seeded.spec_hash()


def _manifest_point(policy, makespan, seed="2011", rate="0.0", error=None):
    label = f"selection_policy={policy}"
    if error is not None:
        kind, level = error
        label += (f",prediction_error.kind={kind}"
                  f",prediction_error.level={level}")
    label += f",churn_profile.rate={rate},seed={seed}"
    return {
        "name": f"prediction-grid[{label}]",
        "result": {"ok": True,
                   "metrics": {"makespan": makespan, "completed": 1.0}},
    }


def _gap_manifest():
    """The measured prediction-grid numbers as a sweep manifest."""
    points = [
        _manifest_point("predicted", 3.5593),
        _manifest_point("predicted", 3.5589, seed="2013"),
        _manifest_point("oracle", 3.5593),
        _manifest_point("oracle", 3.5589, seed="2013"),
        _manifest_point("proximity", 4.4309),
        _manifest_point("proximity", 4.4350, seed="2013"),
        _manifest_point("random", 4.4246),
        _manifest_point("random", 4.4105, seed="2013"),
    ]
    for kind, level, a, b in (
        ("noise", "0.5", 3.8120, 3.8117), ("noise", "1.0", 3.8120, 3.8117),
        ("flip", "0.5", 4.4244, 4.4195), ("flip", "1.0", 4.4243, 4.4194),
        ("stale", "0.5", 3.5593, 3.5589), ("stale", "1.0", 4.4243, 4.4194),
    ):
        points.append(_manifest_point("predicted", a, error=(kind, level)))
        points.append(_manifest_point("predicted", b, seed="2013",
                                      error=(kind, level)))
    return SweepData(label="prediction-grid", points=points)


class TestGapReport:
    """Satellite: the ``gap`` monotonicity headline — predicted's gap
    to the oracle widens with the error level; random's does not."""

    def test_gap_widens_with_error_level(self):
        report = prediction_gap(
            _gap_manifest(), over=("seed", "prediction_error.kind"))
        gaps = {
            row.key["prediction_error.level"]: row.gap
            for row in report.rows
            if row.key["selection_policy"] == "predicted"
        }
        # "" is the zero-error main sheet (no error axis in its label)
        assert gaps[""] == pytest.approx(1.0)
        assert gaps[""] < gaps["0.5"] < gaps["1"]

    def test_blind_policies_carry_no_error_axis(self):
        report = prediction_gap(
            _gap_manifest(), over=("seed", "prediction_error.kind"))
        random_rows = [row for row in report.rows
                       if row.key["selection_policy"] == "random"]
        assert len(random_rows) == 1  # one cell: no level axis to widen
        assert random_rows[0].key["prediction_error.level"] == ""
        assert random_rows[0].gap > 1.0

    def test_error_cells_broadcast_against_the_same_oracle_cell(self):
        report = prediction_gap(_gap_manifest())
        oracle_mean = next(
            row.mean for row in report.rows
            if row.key["selection_policy"] == "oracle")
        for row in report.rows:
            assert row.baseline_mean == pytest.approx(oracle_mean)

    def test_unknown_axes_are_loud(self):
        data = _gap_manifest()
        with pytest.raises(ValueError, match="--over axis"):
            prediction_gap(data, over=("sedd",))
        with pytest.raises(ValueError, match="no 'selection_policy'"):
            prediction_gap(SweepData(label="x", points=[
                {"name": "x[seed=1]",
                 "result": {"ok": True, "metrics": {}}}]), over=())

    def test_markdown_and_json_render(self):
        report = prediction_gap(_gap_manifest())
        md = report.to_markdown()
        assert "Prediction gap" in md and "oracle" in md
        payload = json.loads(report.to_json())
        assert payload["baseline"] == "oracle"
        assert len(payload["rows"]) == len(report.rows)


class TestDeterminism:
    def test_serial_parallel_rerun_byte_identical(self, tmp_path):
        """Prediction-guided selection through the pooled runner
        returns exactly the serial results — group enumeration,
        corruption draws and all."""
        specs = [
            grid_point("predicted"),
            grid_point("oracle"),
            grid_point("predicted",
                       prediction_error__kind="noise",
                       prediction_error__level=0.5),
        ]
        serial = [run_scenario(s).canonical_json() for s in specs]
        rerun = [run_scenario(s).canonical_json() for s in specs]
        assert rerun == serial

        clear_memo()
        runner = SweepRunner(cache_dir=tmp_path, max_workers=2)
        parallel = runner.run(specs, parallel=True)
        assert runner.misses == len(specs)
        assert [r.canonical_json() for r in parallel] == serial


class TestCli:
    def test_sweep_then_gap_renders_the_table(self, tmp_path, capsys):
        from repro.scenarios.cli import main

        code = main([
            "sweep", "prediction-grid", "--serial",
            "--cache-dir", str(tmp_path),
            "--set", "selection_policy=predicted,oracle,random",
            "--set", "seed=2011,2013",
        ])
        assert code == 0
        capsys.readouterr()
        assert main(["gap", "prediction-grid",
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Prediction gap" in out
        assert "selection_policy=oracle" in out

    def test_gap_missing_label_is_a_usage_error(self, tmp_path, capsys):
        from repro.scenarios.cli import main

        assert main(["gap", "no-such-sweep",
                     "--cache-dir", str(tmp_path)]) == 2
        assert "no sweep manifest" in capsys.readouterr().err

    def test_show_lists_the_extra_grid_sheets(self, capsys):
        from repro.scenarios.cli import main

        assert main(["show", "prediction-grid"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["points"]) == 30
        assert len(payload["extra_grids"]) == 2
        assert "prediction_error.kind" in payload["extra_grids"][0]
