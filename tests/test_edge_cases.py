"""Edge-case coverage across the mini-C toolchain and overlay."""

import pytest

from repro.dperf import InterpError, run_single
from repro.dperf.minic import ParseError, SemanticError, check, parse
from repro.p2pdc import deploy_overlay
from repro.platforms import build_cluster


def run(src, entry="main", args=()):
    return run_single(parse(src), entry, args)


class TestParserEdges:
    def test_const_qualifier_accepted(self):
        prog = parse("void f() { const double pi = 3.14159; double x = pi; }")
        check(prog)

    def test_nested_ternary(self):
        src = "int main() { int x = 5; return x < 0 ? 0 - 1 : (x == 0 ? 0 : 1); }"
        assert run(src).value == 1

    def test_assignment_in_for_step(self):
        src = "int main() { int s = 0; for (int i = 0; i < 16; i = i + 4) s += i; return s; }"
        assert run(src).value == 24

    def test_comma_free_multidecl_in_for(self):
        prog = parse("void f() { for (int i = 0, j = 1; i < j; i++) ; }")
        assert prog is not None

    def test_comment_between_tokens(self):
        src = "int main() { return /* forty */ 40 + /* two */ 2; }"
        assert run(src).value == 42

    def test_deeply_nested_parens(self):
        src = f"int main() {{ return {'(' * 40}1{')' * 40}; }}"
        assert run(src).value == 1

    def test_empty_function_body(self):
        check(parse("void f() { }"))

    def test_adjacent_unary_minus(self):
        assert run("int main() { return - - 5; }").value == 5

    def test_keyword_prefix_identifier(self):
        assert run("int main() { int iffy = 3; return iffy; }").value == 3

    def test_missing_paren_reports_line(self):
        with pytest.raises(ParseError, match=":2:"):
            parse("void f() {\n if (1 { } \n}")


class TestSemanticsEdges:
    def test_use_before_declaration_in_scope(self):
        with pytest.raises(SemanticError, match="undeclared"):
            check(parse("void f() { x = 1; int x; }"))

    def test_for_init_scope_not_visible_after(self):
        with pytest.raises(SemanticError, match="undeclared"):
            check(parse("void f() { for (int i = 0; i < 3; i++) ; i = 1; }"))

    def test_multiple_errors_collected(self):
        try:
            check(parse("void f() { a = 1; b = 2; }"))
        except SemanticError as err:
            assert len(err.messages) == 2
        else:  # pragma: no cover
            pytest.fail("expected SemanticError")


class TestInterpEdges:
    def test_global_array(self):
        src = """
        double table[4];
        void fill() { for (int i = 0; i < 4; i++) table[i] = (double)i; }
        double main() { fill(); return table[3]; }
        """
        assert run(src).value == 3.0

    def test_recursive_array_passing(self):
        src = """
        double total(double u[], int n) {
            if (n == 0) return 0.0;
            return u[n - 1] + total(u, n - 1);
        }
        double main() {
            double u[5];
            for (int i = 0; i < 5; i++) u[i] = 1.0;
            return total(u, 5);
        }
        """
        assert run(src).value == 5.0

    def test_float_division_by_zero_gives_inf(self):
        import math

        result = run("double main() { double z = 0.0; return 1.0 / z; }")
        assert math.isinf(result.value)

    def test_scalar_where_array_expected(self):
        with pytest.raises(InterpError, match="array"):
            run("void f(double u[]) { } int main() { int x = 1; f(x); return 0; }")

    def test_array_used_as_scalar(self):
        with pytest.raises(InterpError, match="scalar|array"):
            run("int main() { double u[2]; u += 1; return 0; }")

    def test_too_many_indices(self):
        with pytest.raises(InterpError, match="dims"):
            run("int main() { double u[2]; return (int)u[0][1]; }")

    def test_void_function_returns_none_as_zero_context(self):
        src = "void side() { } int main() { side(); return 7; }"
        assert run(src).value == 7

    def test_return_type_coercion(self):
        assert run("int main() { return 3.99; }").value == 3

    def test_char_type_is_integer(self):
        assert run("int main() { char c = 65; return c + 1; }").value == 66

    def test_long_type(self):
        assert run("long main() { long x = 1000000; return x * 1000; }"
                   ).value == 1_000_000_000


class TestOverlayEdges:
    def test_peer_joins_via_server_when_no_tracker_list(self):
        dep = deploy_overlay(build_cluster(4), n_peers=4, n_zones=2,
                             join_peers=False, with_submitter=False)
        overlay = dep.overlay
        peer = dep.peers[0]
        sig = peer.join_overlay([])  # empty install list → server fallback
        overlay.run_until(sig, limit=1e4)
        assert peer.joined

    def test_peer_join_retries_past_dead_tracker(self):
        dep = deploy_overlay(build_cluster(8), n_peers=8, n_zones=2,
                             join_peers=False, with_submitter=False)
        overlay = dep.overlay
        dep.trackers[0].crash()
        peer = dep.peers[0]  # zone-0 peer: closest tracker is dead
        sig = peer.join_overlay([t.ref for t in dep.trackers])
        overlay.run_until(sig, limit=1e4)
        assert peer.joined
        assert peer.tracker.name == "tracker-1"

    def test_duplicate_node_name_rejected(self):
        dep = deploy_overlay(build_cluster(4), n_peers=4, n_zones=1,
                             join_peers=False, with_submitter=False)
        with pytest.raises(ValueError, match="duplicate"):
            dep.overlay.create_peer(dep.overlay.platform.hosts[0],
                                    "10.9.9.9", name=dep.peers[0].name)

    def test_revive_restarts_main_loop(self):
        dep = deploy_overlay(build_cluster(4), n_peers=4, n_zones=1)
        server = dep.server
        server.crash()
        assert not server.alive
        server.revive()
        assert server.alive
        # the revived server answers bootstrap requests again
        peer = dep.overlay.create_peer(dep.overlay.platform.hosts[1],
                                       "10.0.9.9", name="post-revive")
        sig = peer.join_overlay([])
        dep.overlay.run_until(sig, limit=1e4)
        assert peer.joined
