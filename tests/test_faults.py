"""Lossy-network fault injection and control-plane hardening tests.

Four invariant families over the ``partition-grid`` base:

* **spec surface** — ``NetworkFaultPlan`` validation, canonical forms
  and the JSON round-trip stability the result cache's payload
  comparison depends on;
* **injector unit behaviour** — seeded substream independence, the
  partition as a pure function of simulated time, and counter
  accounting;
* **no-drift** — an *inactive* fault plan leaves the v5 dynamics bit
  for bit: identical sim_events/makespan to the default plan, and no
  fault metrics in the result (absent-when-idle);
* **hardening contrast** — under loss plus a healing partition the
  hardened protocol (acks + retries + dedup) completes while the
  unhardened ablation times out, and duplicated deliveries never
  violate exactly-once rank conservation.

The grid points reuse the registered ``partition-grid`` base (same
app/peers/level instance as the churn grids), so the in-process
calibration cache is shared across the fault/churn test files.
"""

import json
import types

import pytest

from repro.net import FaultInjector
from repro.scenarios import SCENARIOS, run_scenario
from repro.scenarios.runner import execute_reference
from repro.scenarios.spec import NetworkFaultPlan, ScenarioSpec

PARTITION_GRID = SCENARIOS["partition-grid"]

# the documented contrast cell of the grid (docs/fault-grid.md)
LOSS = 0.05
PARTITION = 8.0


def fault_point(seed: int = 2011, **overrides) -> ScenarioSpec:
    spec = PARTITION_GRID.base.with_override("seed", seed)
    for path, value in overrides.items():
        spec = spec.with_override(path.replace("__", "."), value)
    return spec


# -- spec surface ---------------------------------------------------------
class TestFaultPlanSpec:
    def test_defaults_inactive(self):
        plan = NetworkFaultPlan()
        assert not plan.active
        assert plan.retries  # hardening is the default posture

    @pytest.mark.parametrize("field", ["loss", "duplication", "jitter"])
    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_probability_ranges(self, field, bad):
        with pytest.raises(ValueError, match=field):
            NetworkFaultPlan(**{field: bad})

    def test_jitter_delay_positive(self):
        with pytest.raises(ValueError, match="jitter_delay"):
            NetworkFaultPlan(jitter_delay=0.0)

    def test_partition_window_validation(self):
        with pytest.raises(ValueError, match="partition_start"):
            NetworkFaultPlan(partition_start=-1.0)
        with pytest.raises(ValueError, match="partition_duration"):
            NetworkFaultPlan(partition_duration=-1.0)
        # zone groups without a window would silently never fire
        with pytest.raises(ValueError, match="partition_zones"):
            NetworkFaultPlan(partition_zones=((0, 1),))
        with pytest.raises(ValueError, match=">= 0"):
            NetworkFaultPlan(partition_duration=1.0,
                             partition_zones=((-1,),))

    def test_retries_must_be_bool(self):
        with pytest.raises(ValueError, match="retries"):
            NetworkFaultPlan(retries=1)

    def test_zone_groups_canonicalized(self):
        """Lists of lists (the JSON wire form) hash and compare
        identically to native tuple construction."""
        wire = NetworkFaultPlan(partition_duration=2.0,
                                partition_zones=[[0, 1], [2]])
        native = NetworkFaultPlan(partition_duration=2.0,
                                  partition_zones=((0, 1), (2,)))
        assert wire == native
        assert wire.partition_zones == ((0, 1), (2,))

    def test_each_fault_activates_the_plan(self):
        assert NetworkFaultPlan(loss=0.01).active
        assert NetworkFaultPlan(duplication=0.01).active
        assert NetworkFaultPlan(jitter=0.01).active
        assert NetworkFaultPlan(partition_duration=1.0).active
        # retries alone is a posture, not a fault
        assert not NetworkFaultPlan(retries=False).active

    def test_spec_round_trips_through_dict(self):
        spec = fault_point(fault_plan__loss=0.02,
                           fault_plan__partition_duration=4.0)
        again = ScenarioSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.spec_hash() == spec.spec_hash()

    def test_pre_v6_dict_parses_with_no_faults(self):
        d = PARTITION_GRID.base.to_dict()
        del d["fault_plan"]
        spec = ScenarioSpec.from_dict(d)
        assert spec.fault_plan == NetworkFaultPlan()
        assert not spec.has_faults

    def test_hash_payload_is_json_stable(self):
        """The cache compares the stored payload against a fresh one
        with plain dict equality: the payload must equal its own JSON
        round-trip, or every disk cache read becomes a miss."""
        spec = fault_point(
            fault_plan__partition_duration=4.0,
            fault_plan__partition_zones=((0,), (1,)),
        )
        payload = spec.hash_payload()
        assert json.loads(json.dumps(payload)) == payload


# -- injector unit behaviour ----------------------------------------------
def _injector(**kwargs) -> FaultInjector:
    sim = types.SimpleNamespace(now=0.0)
    return FaultInjector(sim, **kwargs)


def _host(name: str):
    return types.SimpleNamespace(name=name)


class TestFaultInjector:
    def test_deterministic_per_seed(self):
        a = _injector(loss=0.3, seed=7)
        b = _injector(loss=0.3, seed=7)
        assert [a.drop() for _ in range(200)] \
            == [b.drop() for _ in range(200)]
        c = _injector(loss=0.3, seed=8)
        assert [a.drop() for _ in range(200)] \
            != [c.drop() for _ in range(200)]

    def test_streams_are_independent(self):
        """Enabling duplication must not shift the loss draws — each
        fault type owns a derived substream."""
        loss_only = _injector(loss=0.3, seed=7)
        both = _injector(loss=0.3, duplication=0.5, seed=7)
        drops = []
        for _ in range(200):
            drops.append(both.drop())
            both.duplicate()  # interleaved draws on the other stream
        assert drops == [loss_only.drop() for _ in range(200)]

    def test_zero_probability_never_draws(self):
        inj = _injector()
        assert not any(inj.drop() for _ in range(50))
        assert not any(inj.duplicate() for _ in range(50))
        assert all(inj.delay() == 0.0 for _ in range(50))
        assert inj.stats.as_metrics() == {
            "messages_lost": 0.0, "messages_duplicated": 0.0,
            "messages_delayed": 0.0, "partition_blocked": 0.0,
        }

    def test_counters_track_decisions(self):
        inj = _injector(loss=1.0, duplication=1.0, jitter=1.0)
        for _ in range(5):
            assert inj.drop()
            assert inj.duplicate()
            assert inj.delay() > 0.0
        m = inj.stats.as_metrics()
        assert m["messages_lost"] == 5.0
        assert m["messages_duplicated"] == 5.0
        assert m["messages_delayed"] == 5.0

    def test_partition_is_pure_function_of_time(self):
        zone_of = {"h0": 0, "h1": 1}
        inj = _injector(partition_start=1.0, partition_duration=2.0,
                        zone_of=zone_of)
        h0, h1 = _host("h0"), _host("h1")
        inj.sim.now = 0.5
        assert not inj.blocked(h0, h1)   # before the window
        inj.sim.now = 1.0
        assert inj.blocked(h0, h1)       # window open (inclusive start)
        inj.sim.now = 2.9
        assert inj.blocked(h0, h1)
        inj.sim.now = 3.0
        assert not inj.blocked(h0, h1)   # healed (exclusive end)
        assert inj.stats.partition_blocked == 2

    def test_default_partition_isolates_every_zone(self):
        zone_of = {"h0": 0, "h1": 1, "h2": 0}
        inj = _injector(partition_start=0.0, partition_duration=10.0,
                        zone_of=zone_of)
        assert inj.blocked(_host("h0"), _host("h1"))   # cross-zone
        assert not inj.blocked(_host("h0"), _host("h2"))  # same zone

    def test_zone_groups_keep_intra_group_traffic(self):
        zone_of = {"h0": 0, "h1": 1, "h2": 2}
        inj = _injector(partition_start=0.0, partition_duration=10.0,
                        partition_zones=((0, 1),), zone_of=zone_of)
        assert not inj.blocked(_host("h0"), _host("h1"))  # same group
        assert inj.blocked(_host("h0"), _host("h2"))      # cross-group
        assert inj.blocked(_host("h1"), _host("h2"))

    def test_no_partition_never_blocks(self):
        inj = _injector(loss=0.5)
        assert not inj.blocked(_host("a"), _host("b"))
        assert inj.stats.partition_blocked == 0


# -- no-drift: an inactive plan is invisible ------------------------------
class TestInactivePlanNoDrift:
    def test_inactive_plan_is_bit_identical_to_default(self):
        """The gating contract: a fault plan with every fault off (even
        with retries toggled, which only matters when active) leaves
        the event stream untouched — same sim_events, same makespan."""
        default = run_scenario(fault_point())
        inactive = run_scenario(fault_point(fault_plan__seed=999))
        ablated = run_scenario(fault_point(fault_plan__retries=False))
        for other in (inactive, ablated):
            assert other.metrics["sim_events"] \
                == default.metrics["sim_events"]
            assert other.metrics["makespan"] == default.metrics["makespan"]
        assert default.metrics["completed"] == 1.0

    def test_inactive_plan_reports_no_fault_metrics(self):
        """Absent-when-idle: fault telemetry appears exactly when the
        plan is active, never as diluting zeros."""
        m = run_scenario(fault_point()).metrics
        for key in ("messages_lost", "messages_duplicated",
                    "messages_delayed", "partition_blocked",
                    "reliable_retries", "reliable_abandoned",
                    "duplicate_deliveries"):
            assert key not in m

    def test_active_plan_reports_fault_metrics(self):
        m = run_scenario(
            fault_point(fault_plan__loss=0.02,
                        fault_plan__partition_duration=PARTITION)
        ).metrics
        for key in ("messages_lost", "messages_duplicated",
                    "messages_delayed", "partition_blocked",
                    "reliable_retries", "reliable_abandoned",
                    "duplicate_deliveries"):
            assert key in m
        assert m["messages_lost"] > 0
        assert m["partition_blocked"] > 0


# -- the hardening contrast ------------------------------------------------
class TestHardeningContrast:
    @pytest.mark.parametrize("seed", PARTITION_GRID.grid_dict()["seed"])
    def test_hardened_completes_under_loss_and_partition(self, seed):
        """The acceptance criterion, hardened half: ≤5% loss plus a
        healing partition degrade the makespan, never the outcome."""
        result = run_scenario(
            fault_point(seed,
                        fault_plan__loss=LOSS,
                        fault_plan__partition_duration=PARTITION))
        assert result.ok, result.reason
        assert result.metrics["completed"] == 1.0
        assert result.metrics["reliable_retries"] > 0
        assert result.metrics["reliable_abandoned"] == 0.0
        baseline = run_scenario(fault_point(seed))
        assert result.metrics["makespan"] > baseline.metrics["makespan"]

    def test_unhardened_ablation_fails_the_same_cell(self):
        """The acceptance criterion, unhardened half: the identical
        fault schedule with retries off deadlocks into the time limit
        (reported as non-completion, not an engine error)."""
        result = run_scenario(
            fault_point(fault_plan__loss=LOSS,
                        fault_plan__partition_duration=PARTITION,
                        fault_plan__retries=False))
        assert result.ok  # non-completion under faults is a data point
        assert result.metrics["completed"] == 0.0
        assert result.reason
        assert result.metrics["reliable_retries"] == 0.0

    def test_duplication_never_double_counts_a_rank(self):
        """Exactly-once under duplication: receiver-side dedup absorbs
        every duplicate control message — each rank completes once."""
        spec = fault_point(fault_plan__duplication=0.2)
        dep, outcome = execute_reference(spec)
        assert outcome.ok, outcome.reason
        ranks = [r.rank for r in outcome.results]
        assert len(ranks) == len(set(ranks)), "a rank completed twice"
        assert sorted(ranks) == list(range(spec.n_peers))
        counters = dep.overlay.stats.counters
        assert dep.overlay.faults.stats.messages_duplicated > 0
        assert counters.get("duplicate_deliveries", 0) > 0

    def test_rank_conservation_under_loss_with_retries(self):
        """Retransmissions can themselves manufacture duplicates (a
        slow ack crosses a retry): conservation must hold under loss
        exactly as under injected duplication."""
        spec = fault_point(fault_plan__loss=LOSS,
                           fault_plan__partition_duration=PARTITION)
        dep, outcome = execute_reference(spec)
        assert outcome.ok, outcome.reason
        ranks = [r.rank for r in outcome.results]
        assert len(ranks) == len(set(ranks))
        assert sorted(ranks) == list(range(spec.n_peers))

    def test_registered_grid_shape(self):
        assert PARTITION_GRID.n_points == 24
        points = PARTITION_GRID.points()
        assert len({p.spec_hash() for p in points}) == len(points)
        # the clean corner: no loss, no partition — an inactive plan,
        # i.e. the v5 baseline rides inside the grid itself
        corners = [p for p in points if not p.fault_plan.active]
        assert corners
        assert {p.fault_plan.retries for p in points} == {True, False}
        assert {p.fault_plan.loss for p in points} == {0.0, 0.02, LOSS}
