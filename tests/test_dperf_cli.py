"""Tests for the dPerf command-line interface."""

import pytest

from repro.dperf.cli import main

SRC = """
double main(int n) {
    int rank = p2psap_rank();
    int size = p2psap_size();
    double u[n];
    for (int i = 0; i < n; i++) u[i] = (double)(i + rank);
    if (size > 1) {
        int to = rank == 0 ? 1 : 0;
        p2psap_isend(to, u, n);
        p2psap_recv(to, u, n);
    }
    double s = 0.0;
    for (int i = 0; i < n; i++) s += u[i];
    return s;
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "demo.c"
    path.write_text(SRC)
    return path


def test_basic_prediction(source_file, capsys):
    rc = main([str(source_file), "--peers", "2", "--args", "64",
               "--level", "O2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "t_predicted" in out
    assert "O2" in out


def test_dump_instrumented(source_file, capsys):
    rc = main([str(source_file), "--dump-instrumented"])
    assert rc == 0
    assert "papi_block_begin" in capsys.readouterr().out


def test_trace_and_platform_files_written(source_file, tmp_path, capsys):
    trace_dir = tmp_path / "traces"
    platform_file = tmp_path / "platform.xml"
    rc = main([str(source_file), "--peers", "2", "--args", "32",
               "--trace-dir", str(trace_dir),
               "--platform-file", str(platform_file)])
    assert rc == 0
    assert len(list(trace_dir.glob("demo.rank*.trace"))) == 2
    assert platform_file.exists()
    # and the emitted platform file round-trips through the CLI
    rc2 = main([str(source_file), "--peers", "2", "--args", "32",
                "--platform-xml", str(platform_file)])
    assert rc2 == 0


def test_platform_choices(source_file, capsys):
    for platform in ("lan", "multisite"):
        rc = main([str(source_file), "--peers", "2", "--args", "16",
                   "--platform", platform])
        assert rc == 0


def test_missing_file_is_user_error(capsys):
    rc = main(["/nonexistent/prog.c"])
    assert rc == 2
    assert "cannot read" in capsys.readouterr().err


def test_parse_error_is_user_error(tmp_path, capsys):
    bad = tmp_path / "bad.c"
    bad.write_text("int main( { return 0; }")
    rc = main([str(bad)])
    assert rc == 2
    assert "error" in capsys.readouterr().err


def test_missing_entry_reported(tmp_path, capsys):
    src = tmp_path / "f.c"
    src.write_text("int f() { return 0; }")
    rc = main([str(src), "--entry", "main"])
    assert rc == 2


def test_fortran_source_by_extension(tmp_path, capsys):
    src = tmp_path / "demo.f90"
    src.write_text("""
    function main(n) result(s)
    integer :: n, i
    real*8 :: s
    s = 0.0d0
    do i = 1, n
       s = s + dble(i)
    end do
    end
    """)
    rc = main([str(src), "--args", "100", "--level", "O1"])
    assert rc == 0
    assert "t_predicted" in capsys.readouterr().out


def test_too_many_peers_for_platform(source_file, tmp_path, capsys):
    from repro.platforms import build_cluster, write_platform_xml

    platform_file = tmp_path / "tiny.xml"
    platform_file.write_text(write_platform_xml(build_cluster(1)))
    rc = main([str(source_file), "--peers", "8",
               "--platform-xml", str(platform_file)])
    assert rc == 2
