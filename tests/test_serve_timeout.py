"""The serve-daemon timeout leak, pinned.

The bug: when ``future.result(timeout=...)`` expired, the daemon
replied ``timeout`` but the abandoned worker thread kept simulating
the *entire* seed pool while holding the engine's compute lock —
every later query queued behind work nobody was waiting for, so one
slow query could make the next one miss its timeout too.

The fix is cooperative cancellation: the request's deadline rides
into the engine, which consults it before taking the compute lock,
after acquiring it, and between seed-pool members, abandoning the
compute (``ComputeAbandoned``, counted as ``stale_computes``) the
moment nobody is waiting.  The stale window is bounded by one
scenario run, not one pool.
"""

import time

import pytest

from repro.scenarios.runner import ScenarioResult, clear_memo
from repro.serve import QueryEngine, QuerySpec, ServeClient, ServeDaemon
from repro.serve.engine import ComputeAbandoned

#: Per-member simulated compute time: long enough that a pool blows a
#: sub-second timeout, short enough the suite stays fast.
MEMBER_SECONDS = 0.3

TINY = {
    "deadline": 1.0,
    "percentile": 90.0,
    "pool": 1,
    "n_peers": 2,
    "workload": {"app": "heat", "n": 64, "nit": 20, "level": "O1"},
    "platform": {"kind": "cluster", "n_hosts": 8},
}


@pytest.fixture
def slow_scenarios(monkeypatch):
    """Replace the engine's simulation entry point with a stub that
    sleeps a deterministic MEMBER_SECONDS per pool member."""
    clear_memo()

    def fake_run(spec):
        time.sleep(MEMBER_SECONDS)
        return ScenarioResult(
            name=spec.name, spec_hash=spec.spec_hash(), kind=spec.kind,
            t=1.0, ok=True,
            metrics={"completed": 1.0, "makespan": 1.0},
        )

    monkeypatch.setattr("repro.serve.engine.run_scenario", fake_run)
    yield
    clear_memo()


def test_expired_deadline_abandons_uncached_compute(slow_scenarios):
    engine = QueryEngine(cache_dir=None)
    query = QuerySpec.from_dict(dict(TINY, pool=3))
    with pytest.raises(ComputeAbandoned):
        engine.answer(query, deadline=time.monotonic() - 1.0)
    assert engine.stats.get("stale_computes") == 1
    assert engine.stats.get("scenario_runs") == 0  # bailed before any


def test_cache_hits_still_answer_past_the_deadline(slow_scenarios):
    engine = QueryEngine(cache_dir=None)
    query = QuerySpec.from_dict(TINY)
    answer = engine.answer(query)  # warm the memo
    # a hit is free: no reason to refuse it, however late
    late = engine.answer(query, deadline=time.monotonic() - 1.0)
    assert late.canonical_json() == answer.canonical_json()
    assert engine.stats.get("stale_computes") == 0


def test_abandonment_is_bounded_by_one_pool_member(slow_scenarios):
    """Mid-pool expiry: members already simulated stay simulated, but
    at most one more member runs after the deadline passes."""
    engine = QueryEngine(cache_dir=None)
    query = QuerySpec.from_dict(dict(TINY, pool=10))
    budget = 2.5 * MEMBER_SECONDS  # expires during member 3 of 10
    started = time.monotonic()
    with pytest.raises(ComputeAbandoned):
        engine.answer(query, deadline=started + budget)
    elapsed = time.monotonic() - started
    runs = engine.stats.get("scenario_runs")
    assert 0 < runs <= 4  # nowhere near the full pool of 10
    assert elapsed < 6 * MEMBER_SECONDS
    assert engine.stats.get("stale_computes") == 1


def test_timed_out_query_does_not_block_the_next_one(slow_scenarios):
    """The daemon-level pin: after a ``timeout`` reply, the abandoned
    compute frees the lock within one member, so the *next* query
    answers inside its own timeout instead of stacking behind ten
    stale pool members."""
    engine = QueryEngine(cache_dir=None)
    timeout = 3 * MEMBER_SECONDS
    with ServeDaemon(engine, address="127.0.0.1:0",
                     request_timeout=timeout) as daemon:
        with ServeClient(daemon.address, timeout=30.0) as client:
            # pool=10 needs ~10 members' time: blows the timeout
            reply = client.request(
                {"op": "query", "query": dict(TINY, pool=10)}
            )
            assert reply["ok"] is False
            assert reply["error"] == "timeout"
            # the next (cheap, different) query must answer promptly:
            # pre-fix, ~8 stale members (~8x MEMBER_SECONDS) still
            # held the compute lock here
            started = time.monotonic()
            reply = client.request(
                {"op": "query", "query": dict(TINY, seed_base=2222)}
            )
            elapsed = time.monotonic() - started
            assert reply["ok"] is True
            assert elapsed < timeout + 2 * MEMBER_SECONDS
        # the abandoned thread noticed and bailed
        deadline = time.monotonic() + 5.0
        while (engine.stats.get("stale_computes") < 1
               and time.monotonic() < deadline):
            time.sleep(0.05)
        assert engine.stats.get("stale_computes") >= 1
        assert engine.stats.get("request_timeouts") >= 1
        snap = engine.snapshot()
        assert snap["stale_computes"] >= 1
