"""Integration tests for the experiment runners (reduced configs).

These assert the *claims* of the paper at test-sized instances:
prediction tracks the reference, the GCC-level family is ordered, and
the platform ordering Grid5000 ≲ LAN ≪ xDSL holds.
"""

import pytest

from repro.analysis import classify
from repro.experiments import (
    Stage1Config,
    Stage2Config,
    calibration as C,
    predict_on,
    predicted_time,
    reference_time,
    run_stage1,
    run_stage2,
    run_table1,
)


@pytest.fixture(scope="module")
def small_stage1():
    return run_stage1(Stage1Config(peer_counts=(2, 4), levels=("O0", "O3")))


class TestCalibration:
    def test_two_peer_o0_near_paper_scale(self):
        """Fig. 9's top curve: t(2 peers, O0) ≈ 40 s (paper ≈ 42 s)."""
        t = predicted_time(2, "O0")
        assert 30.0 < t < 50.0

    def test_two_peer_o3_near_paper_scale(self):
        """Fig. 10: t(2 peers, O3) in the paper's 8–16 s band."""
        t = predicted_time(2, "O3")
        assert 8.0 < t < 16.0

    def test_level_family_ordered(self):
        times = {lvl: predicted_time(2, lvl) for lvl in C.OPT_LEVELS}
        cluster = [times["O1"], times["O2"], times["Os"]]
        assert times["O0"] > 2 * max(cluster)
        assert times["O3"] <= min(cluster)

    def test_calibration_instance_small(self):
        runs = C.calibration_runs(2)
        assert len(runs) == 2
        # thousands of events, not millions
        assert sum(len(r.entries) for r in runs) < 2000

    def test_spread_hosts_even(self):
        platform = C.xdsl_platform()
        hosts = C.spread_hosts(platform, 8)
        assert len(hosts) == 8
        assert len({h.name for h in hosts}) == 8

    def test_workload_iteration_time_positive(self):
        w = C.obstacle_workload(4, "O2")
        assert w.iteration_time(0, 4) > 0
        assert w.nit == C.NIT


class TestStage1:
    def test_reference_scales_with_peers(self, small_stage1):
        ref = small_stage1.reference_series("O0")
        assert ref[4] < ref[2]
        # near-linear strong scaling on the cluster at O0
        assert ref[2] / ref[4] > 1.6

    def test_prediction_accurate(self, small_stage1):
        """Fig. 10's claim: reference and prediction nearly coincide."""
        for level in ("O0", "O3"):
            report = small_stage1.accuracy(level)
            assert report.mape < 0.05, f"{level}: {report}"

    def test_o0_above_o3(self, small_stage1):
        assert (
            small_stage1.reference_series("O0")[2]
            > 2 * small_stage1.reference_series("O3")[2]
        )

    def test_reference_includes_protocol_overhead(self):
        """The reference (full P2PDC run) is ≥ the bare prediction."""
        ref = reference_time(2, "O0", seed=7)
        pred = predicted_time(2, "O0")
        assert ref > pred * 0.97  # never wildly below
        assert abs(ref - pred) / ref < 0.05

    def test_reference_deterministic_per_seed(self):
        """Same seed → bit-identical simulated reference time."""
        t1 = reference_time(2, "O1", seed=99)
        t2 = reference_time(2, "O1", seed=99)
        t3 = reference_time(2, "O1", seed=100)
        assert t1 == t2
        assert t1 != t3  # the jitter stream actually depends on the seed


class TestStage2:
    @pytest.fixture(scope="class")
    def stage2(self):
        return run_stage2(Stage2Config(peer_counts=(2, 4)))

    def test_platform_ordering(self, stage2):
        """Fig. 11: xDSL ≫ LAN ≥ Grid5000 at the same peer count."""
        for n in (2, 4):
            g5k = stage2.predicted["grid5000"][n]
            lan = stage2.predicted["lan"][n]
            xdsl = stage2.predicted["xdsl"][n]
            assert xdsl > lan * 1.3
            assert lan >= g5k * 0.999

    def test_four_xdsl_vs_two_grid5000(self, stage2):
        """Table I row 1: 4 xDSL slightly lower than 2 Grid5000."""
        verdict = classify(
            stage2.predicted["xdsl"][4], stage2.predicted["grid5000"][2]
        )
        assert verdict == "slightly lower than"

    def test_lan_equal_peers_not_better(self, stage2):
        for n in (2, 4):
            assert stage2.predicted["lan"][n] >= stage2.predicted["grid5000"][n]

    def test_reference_is_cluster_reference(self, stage2):
        assert set(stage2.reference) == {2, 4}

    def test_unknown_platform_rejected(self):
        with pytest.raises(ValueError, match="unknown platform"):
            predict_on("etherkiller", 2, "O0")


class TestTable1:
    def test_rows_built_for_paper_pairings(self):
        result = run_table1(Stage2Config(peer_counts=(2, 4, 8, 32)))
        assert len(result.rows) == 5
        # row 1: 4 xDSL vs 2 Grid5000 must agree with the paper
        assert result.rows[0].verdict == "slightly lower than"
        # row 2: 2 LAN vs 2 Grid5000 — marginally slower (the paper says
        # "slightly lower"; our ratio is ~1.01, at the same/slightly edge)
        assert result.rows[1].verdict in ("same as", "slightly lower than")
        assert result.rows[1].ratio >= 1.0
        # row 3: 4 LAN slightly lower than 4 Grid5000
        assert result.rows[2].verdict == "slightly lower than"
        # rows 4–5 deviate by design: our LAN scales better than the
        # paper's Table I (see EXPERIMENTS.md); LAN must never be slower
        # than the paper claims, only faster.
        assert result.rows[3].ratio <= 1.02
        assert result.rows[4].ratio <= 1.60
        assert result.agreement() >= 0.4

    def test_equivalence_search_finds_lan_counts(self):
        result = run_table1(Stage2Config(peer_counts=(2, 4, 8, 32)))
        # some LAN config matches every Grid5000 config
        assert all(v is not None for v in result.lan_equivalents.values())
