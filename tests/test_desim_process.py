"""Unit tests for generator processes, interrupts, and mailboxes."""

import pytest

from repro.desim import AnyOf, Interrupt, Mailbox, Simulator


def test_process_runs_and_returns():
    sim = Simulator()

    def body():
        yield sim.timeout(1.0)
        yield sim.timeout(2.0)
        return "result"

    p = sim.process(body())
    sim.run()
    assert p.triggered and p.ok
    assert p.value == "result"
    assert sim.now == 3.0


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError, match="generator"):
        sim.process(lambda: None)  # type: ignore[arg-type]


def test_timeout_value_passed_into_process():
    sim = Simulator()
    seen = []

    def body():
        v = yield sim.timeout(1.0, value="hello")
        seen.append(v)

    sim.process(body())
    sim.run()
    assert seen == ["hello"]


def test_process_waits_on_another_process():
    sim = Simulator()

    def child():
        yield sim.timeout(2.0)
        return 7

    def parent():
        c = sim.process(child())
        v = yield c
        return v * 2

    p = sim.process(parent())
    sim.run()
    assert p.value == 14


def test_process_exception_propagates_to_waiter():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        raise ValueError("child died")

    def parent():
        try:
            yield sim.process(child())
        except ValueError as e:
            return f"caught {e}"

    p = sim.process(parent())
    sim.run()
    assert p.value == "caught child died"


def test_process_failure_recorded_and_check_raises():
    sim = Simulator()

    def bad():
        yield sim.timeout(1.0)
        raise RuntimeError("oops")

    p = sim.process(bad())
    sim.run()
    assert p.triggered and not p.ok
    with pytest.raises(RuntimeError, match="oops"):
        p.check()


def test_yield_non_waitable_fails_process():
    sim = Simulator()

    def bad():
        yield 42  # type: ignore[misc]

    p = sim.process(bad())
    sim.run()
    assert not p.ok
    with pytest.raises(TypeError, match="non-waitable"):
        p.check()


def test_interrupt_wakes_sleeping_process():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
            log.append("slept full")
        except Interrupt as i:
            log.append(("interrupted", i.cause, sim.now))

    p = sim.process(sleeper())
    sim.schedule(5.0, p.interrupt, "failure-X")
    sim.run()
    assert log == [("interrupted", "failure-X", 5.0)]


def test_interrupt_after_completion_is_noop():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)
        return "ok"

    p = sim.process(quick())
    sim.schedule(10.0, p.interrupt, "late")
    sim.run()
    assert p.value == "ok"


def test_uncaught_interrupt_kills_process():
    sim = Simulator()

    def stubborn():
        yield sim.timeout(100.0)

    p = sim.process(stubborn())
    sim.schedule(1.0, p.interrupt, None)
    sim.run()
    assert p.triggered and not p.ok
    assert isinstance(p.exception, Interrupt)


def test_stale_wakeup_after_interrupt_ignored():
    """A process interrupted while waiting must not be resumed again
    when the original signal later fires."""
    sim = Simulator()
    resumed = []

    def body():
        try:
            yield sim.timeout(10.0)
            resumed.append("timeout")
        except Interrupt:
            yield sim.timeout(50.0)  # outlive the original timeout
            resumed.append("post-interrupt")

    p = sim.process(body())
    sim.schedule(1.0, p.interrupt)
    sim.run()
    assert resumed == ["post-interrupt"]
    assert p.ok


def test_alive_flag():
    sim = Simulator()

    def body():
        yield sim.timeout(5.0)

    p = sim.process(body())
    assert p.alive
    sim.run()
    assert not p.alive


def test_process_zero_duration():
    sim = Simulator()

    def instant():
        return "now"
        yield  # pragma: no cover

    p = sim.process(instant())
    sim.run()
    assert p.value == "now"
    assert sim.now == 0.0


class TestMailbox:
    def test_put_then_get(self):
        sim = Simulator()
        box = Mailbox("m")
        box.put("x")
        got = []

        def getter():
            v = yield box.get()
            got.append(v)

        sim.process(getter())
        sim.run()
        assert got == ["x"]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        box = Mailbox("m")
        got = []

        def getter():
            v = yield box.get()
            got.append((v, sim.now))

        sim.process(getter())
        sim.schedule(3.0, box.put, "late")
        sim.run()
        assert got == [("late", 3.0)]

    def test_fifo_order_items(self):
        sim = Simulator()
        box = Mailbox()
        for i in range(5):
            box.put(i)
        got = []

        def getter():
            for _ in range(5):
                got.append((yield box.get()))

        sim.process(getter())
        sim.run()
        assert got == [0, 1, 2, 3, 4]

    def test_fifo_order_getters(self):
        sim = Simulator()
        box = Mailbox()
        got = []

        def getter(tag):
            v = yield box.get()
            got.append((tag, v))

        sim.process(getter("first"))
        sim.process(getter("second"))
        sim.schedule(1.0, box.put, "a")
        sim.schedule(2.0, box.put, "b")
        sim.run()
        assert got == [("first", "a"), ("second", "b")]

    def test_try_get(self):
        box = Mailbox()
        assert box.try_get() is None
        box.put(9)
        assert box.try_get() == 9
        assert box.try_get() is None

    def test_clear(self):
        box = Mailbox()
        box.put(1)
        box.put(2)
        assert box.clear() == 2
        assert len(box) == 0

    def test_abandoned_getter_skipped(self):
        """A getter whose signal was resolved elsewhere (e.g. timeout
        via AnyOf) must not swallow an item."""
        sim = Simulator()
        box = Mailbox()
        got = []

        def impatient():
            g = box.get()
            res = yield AnyOf([g, sim.timeout(1.0, "timed-out")])
            got.append(("impatient", res))
            if not g.triggered:
                g.succeed(None)  # abandon: mark resolved so put() skips us

        def patient():
            v = yield box.get()
            got.append(("patient", v))

        sim.process(impatient())
        sim.process(patient())
        sim.schedule(5.0, box.put, "item")
        sim.run()
        assert ("impatient", (1, "timed-out")) in got
        assert ("patient", "item") in got


def test_rng_streams_deterministic():
    from repro.desim import RngRegistry

    r1 = RngRegistry(42)
    r2 = RngRegistry(42)
    assert r1.stream("a").random() == r2.stream("a").random()
    # distinct names give distinct streams
    assert r1.stream("a").random() != r1.stream("b").random()
    # same stream returned on re-request
    assert r1.stream("a") is r1.stream("a")


def test_rng_streams_differ_across_seeds():
    from repro.desim import RngRegistry

    assert RngRegistry(1).stream("x").random() != RngRegistry(2).stream("x").random()
