"""The serving tier's pin: specs, engine, protocol, daemon, soak.

Sections:

- **QuerySpec / Answer** — validation, wire round-trips, hash
  discipline;
- **percentile properties** — monotone in p, permutation-invariant,
  exact on known pools, inf-safe, and *consistent* with the
  ``compare --percentiles`` columns over the same pool (the one-
  estimator contract);
- **engine counters** — cache-hit answers are returned without
  re-simulation, the hot path touches no disk, LRU eviction falls
  back to the disk tier, batch pricing amortizes enumeration;
- **protocol / daemon adversarial** — garbage, truncation, version
  skew, oversized batches, mid-response disconnects: clean error
  replies, the daemon keeps serving, threads return to baseline;
- **identity** — serial vs concurrent byte-identical answers, and a
  killed-and-restarted daemon re-answering its history from the
  on-disk memo without a single new simulation;
- **soak** — >=5k mixed queries over >=4 concurrent clients: pinned
  throughput floor, zero answer drift (exempt from the CI duration
  tripwire by name — see ``tools/duration_tripwire.py``);
- **tripwire** — the shared threshold constant and its one sanctioned
  exemption.
"""

import json
import math
import random
import socket
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import tools.duration_tripwire as tripwire
from repro.analysis import (
    SweepData,
    compare_sweeps,
    pct_key,
    percentile,
    percentile_summary,
)
from repro.p2pdc import GroupPricer, candidate_groups, predict_makespan
from repro.scenarios import workloads
from repro.scenarios.runner import clear_memo, run_scenario
from repro.scenarios.spec import PlatformPlan, WorkloadPlan
from repro.serve import (
    MAX_BATCH,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    Answer,
    ProtocolError,
    QueryEngine,
    QuerySpec,
    ServeClient,
    ServeDaemon,
)
from repro.serve.protocol import encode, parse_address, parse_request

# one tiny reference instance everywhere: first use pays the mini-C
# calibration (lru-cached per process), every later pool member is
# milliseconds
TINY = {
    "deadline": 1.0,
    "percentile": 90.0,
    "pool": 3,
    "n_peers": 2,
    "workload": {"app": "heat", "n": 64, "nit": 20, "level": "O1"},
    "platform": {"kind": "cluster", "n_hosts": 8},
}


def tiny_query(**overrides):
    payload = dict(TINY)
    payload.update(overrides)
    return QuerySpec.from_dict(payload)


@pytest.fixture(autouse=True)
def _isolate_process_globals():
    """Counter pins need a cold scenario memo, and engines re-point the
    process-global trace cache; reset both around every test."""
    clear_memo()
    saved = workloads._TRACE_CACHE_DIR
    yield
    workloads.set_trace_cache_dir(saved)


# -- QuerySpec / Answer -------------------------------------------------------

def test_query_spec_validation():
    with pytest.raises(ValueError):
        tiny_query(deadline=0.0)
    with pytest.raises(ValueError):
        tiny_query(deadline=-1.0)
    with pytest.raises(ValueError):
        tiny_query(percentile=0.0)
    with pytest.raises(ValueError):
        tiny_query(percentile=101.0)
    with pytest.raises(ValueError):
        tiny_query(pool=0)
    with pytest.raises(ValueError):
        tiny_query(seed_base=-1)
    # cross-field guards delegate to ScenarioSpec
    with pytest.raises(ValueError):
        tiny_query(host_policy="bogus")
    with pytest.raises(ValueError):
        tiny_query(workload={"app": "no-such-app"})


def test_query_spec_roundtrip_and_hash():
    q = tiny_query()
    again = QuerySpec.from_dict(q.to_dict())
    assert again == q
    assert again.query_hash() == q.query_hash()
    assert len(q.query_hash()) == 16
    # the hash covers the SLO fields, not just the scenario shape
    assert tiny_query(deadline=2.0).query_hash() != q.query_hash()
    assert tiny_query(percentile=50.0).query_hash() != q.query_hash()
    assert tiny_query(pool=4).query_hash() != q.query_hash()


def test_query_spec_rejects_unknown_fields():
    with pytest.raises(ValueError, match="unknown query field"):
        QuerySpec.from_dict(dict(TINY, deadlien=1.0))
    with pytest.raises(ValueError, match="must be an object"):
        QuerySpec.from_dict(dict(TINY, workload="heat"))
    with pytest.raises(ValueError, match="bad 'workload' payload"):
        QuerySpec.from_dict(
            dict(TINY, workload={"app": "heat", "sizzle": 9})
        )
    with pytest.raises(ValueError, match="must be an object"):
        QuerySpec.from_dict([1, 2, 3])


def test_query_spec_overrides():
    q = tiny_query().with_override("workload.level", "O3")
    assert q.workload.level == "O3"
    assert q.with_override("n_peers", 4).n_peers == 4
    with pytest.raises(KeyError):
        tiny_query().with_override("nope", 1)
    with pytest.raises(KeyError):
        tiny_query().with_override("workload.nope", 1)


def test_scenario_pool_shape():
    q = tiny_query(pool=4, seed_base=7)
    specs = q.scenario_specs()
    assert len(specs) == 4
    assert [s.seed for s in specs] == [7, 8, 9, 10]
    assert all(f"[seed={s.seed}]" in s.name for s in specs)
    # deadline/percentile are SLO readout knobs, not scenario shape:
    # the pool simulations are shared across them (spec_hash ignores
    # the point name)
    other = tiny_query(pool=4, seed_base=7, deadline=9.0, percentile=50.0)
    assert [s.spec_hash() for s in specs] == \
        [s.spec_hash() for s in other.scenario_specs()]


def test_query_spec_mirrors_scenario_spec_fields():
    """Field-for-field parity with ScenarioSpec: every scenario-shaping
    axis a sweep exposes must be queryable, or 'query the grid you
    just swept' silently stops holding for a new axis."""
    from dataclasses import fields

    from repro.scenarios.spec import ScenarioSpec

    scenario_fields = {f.name for f in fields(ScenarioSpec)}
    query_fields = {f.name for f in fields(QuerySpec)}
    slo_only = {"deadline", "percentile", "pool", "seed_base"}
    fixed = {"name", "kind", "seed"}  # derived per pool member
    assert scenario_fields - query_fields == fixed
    assert query_fields - scenario_fields == slo_only
    # the compound fields survive the wire (lists back to canonical
    # tuples, sub-plan dicts back to frozen plans)
    q = tiny_query(
        churn=[{"time": 0.5, "kind": "tracker"}],
        failure_history=[["peer-3", 2]],
        deploy_peers=4, n_zones=2,
    )
    again = QuerySpec.from_dict(json.loads(json.dumps(q.to_dict())))
    assert again == q and again.query_hash() == q.query_hash()
    assert again.failure_history == (("peer-3", 2),)
    base = q._base_spec()
    assert base.deploy_peers == 4 and base.n_zones == 2
    assert base.churn == q.churn
    with pytest.raises(ValueError, match="'churn'"):
        QuerySpec.from_dict(dict(TINY, churn=[{"when": 1.0}]))
    # prediction_error's cross-field guard rides through _base_spec
    with pytest.raises(ValueError, match="predicted"):
        tiny_query(prediction_error={"kind": "noise", "level": 0.5})


def test_sweep_results_reused_by_daemon(tmp_path):
    """The EXPERIMENTS.md walkthrough contract: a churn-grid sweep cell
    and the matching query's pool members hash to the same scenario
    specs, so the daemon prices a swept grid point with zero new
    simulations."""
    from dataclasses import replace

    from repro.scenarios import get_scenario

    base = get_scenario("churn-grid").base
    cell = replace(
        base,
        platform=replace(base.platform, kind="lan"),
        churn_profile=replace(base.churn_profile, rate=0.6),
    )
    q = QuerySpec(
        deadline=30.0, percentile=90.0, pool=5, seed_base=2011,
        workload=cell.workload, platform=cell.platform,
        churn_profile=cell.churn_profile, n_peers=cell.n_peers,
        deploy_peers=cell.deploy_peers, n_zones=cell.n_zones,
        spares=cell.spares, time_limit=cell.time_limit,
    )
    pool_hashes = [s.spec_hash() for s in q.scenario_specs()]
    swept_hashes = [
        replace(cell, seed=2011 + i).spec_hash() for i in range(5)
    ]
    assert pool_hashes == swept_hashes


def test_answer_roundtrip():
    a = Answer(query_hash="ab" * 8, pool=4, completed=3, deadline=2.0,
               percentile=90.0, value=1.5, meets=True,
               percentiles={"p50": 1.0, "p99.9": None},
               samples=[0.5, 1.0, 1.5, None])
    again = Answer.from_dict(json.loads(a.canonical_json()))
    assert again.canonical_json() == a.canonical_json()
    assert a.completion_rate == 0.75


# -- percentile properties ----------------------------------------------------

finite_pools = st.lists(
    st.floats(min_value=0.0, max_value=1e6,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=20,
)


@settings(max_examples=60, deadline=None)
@given(samples=finite_pools,
       p1=st.floats(min_value=0, max_value=100),
       p2=st.floats(min_value=0, max_value=100))
def test_percentile_monotone_in_p(samples, p1, p2):
    lo, hi = sorted((p1, p2))
    assert percentile(samples, lo) <= percentile(samples, hi)


@settings(max_examples=60, deadline=None)
@given(samples=finite_pools, p=st.floats(min_value=0, max_value=100),
       seed=st.integers(0, 2**16))
def test_percentile_permutation_invariant(samples, p, seed):
    shuffled = list(samples)
    random.Random(seed).shuffle(shuffled)
    assert percentile(shuffled, p) == percentile(samples, p)


def test_percentile_exact_on_known_pools():
    assert percentile([3.0], 0) == 3.0
    assert percentile([3.0], 100) == 3.0
    assert percentile([1.0, 2.0, 3.0, 4.0], 0) == 1.0
    assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5
    assert percentile([1.0, 2.0, 3.0, 4.0], 100) == 4.0
    assert percentile([4.0, 1.0, 3.0, 2.0], 25) == 1.75
    # rank points are exact order statistics: p = 100k/(n-1)
    pool = [10.0, 20.0, 30.0, 40.0, 50.0]
    for k, want in enumerate(pool):
        assert percentile(pool, 100.0 * k / 4) == want


def test_percentile_bounds_and_inf():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], -1)
    with pytest.raises(ValueError):
        percentile([1.0], 101)
    with pytest.raises(ValueError):
        percentile([1.0, math.nan], 50)
    pool = [1.0, 2.0, math.inf, math.inf]
    assert percentile(pool, 0) == 1.0
    assert math.isinf(percentile(pool, 90))
    assert math.isinf(percentile(pool, 100))  # never NaN
    assert percentile_summary(pool)["p99.9"] is None
    # an interpolation landing below the failed tail stays finite
    assert percentile_summary([1.0, 2.0, 3.0, math.inf])["p50"] == \
        pytest.approx(2.5)


@settings(max_examples=40, deadline=None)
@given(samples=finite_pools)
def test_percentile_within_sample_range(samples):
    for p in (0, 37.5, 50, 99, 100):
        est = percentile(samples, p)
        assert min(samples) <= est <= max(samples)


def test_serve_answer_matches_compare_percentiles(tmp_path):
    """The one-estimator contract: a daemon answer's percentiles are
    the ``compare --percentiles`` columns over the same pool."""
    engine = QueryEngine(cache_dir=tmp_path)
    query = tiny_query(pool=5)
    answer = engine.answer(query)
    points = [
        {"name": spec.name, "result": run_scenario(spec).to_dict()}
        for spec in query.scenario_specs()
    ]
    sweep = SweepData(label="pool", points=points)
    report = compare_sweeps(sweep, sweep, metric="makespan",
                            over=("seed",), percentiles=(50.0, 90.0, 99.0))
    (row,) = report.rows
    assert answer.completed == query.pool  # all finite: comparable
    for p in (50.0, 90.0, 99.0):
        assert row.pcts_a[pct_key(p)] == pytest.approx(
            percentile([s for s in answer.samples], p)
        )
    assert row.pcts_a == row.pcts_b


def test_compare_percentiles_rejects_bad_p(tmp_path):
    sweep = SweepData(label="x", points=[])
    with pytest.raises(ValueError):
        compare_sweeps(sweep, sweep, percentiles=(101.0,))


# -- engine counters ----------------------------------------------------------

def test_engine_cold_then_memo_hit(tmp_path):
    engine = QueryEngine(cache_dir=tmp_path)
    q = tiny_query()
    a1 = engine.answer(q)
    assert engine.stats.get("computed") == 1
    assert engine.stats.get("scenario_runs") == q.pool
    # the no-resimulation pin: repeats add memo_hits and nothing else
    a2 = engine.answer(q)
    a3 = engine.answer(q)
    assert a1.canonical_json() == a2.canonical_json() == a3.canonical_json()
    assert engine.stats.get("memo_hits") == 2
    assert engine.stats.get("computed") == 1
    assert engine.stats.get("scenario_runs") == q.pool


def test_engine_hot_path_touches_no_disk(tmp_path):
    """Satellite 3's regression pin: after the first answer, repeats
    perform zero on-disk cache I/O — and to make 'zero' unfakeable,
    the disk tiers are rigged to explode if touched."""
    engine = QueryEngine(cache_dir=tmp_path)
    q = tiny_query()
    engine.answer(q)
    io_before = engine.disk_io()

    def _boom(*_a, **_k):
        raise AssertionError("hot path touched a disk cache")

    engine.result_cache.load = _boom
    engine.result_cache.store = _boom
    engine.answer_cache.load = _boom
    engine.answer_cache.store = _boom
    for _ in range(50):
        engine.answer(q)
    assert engine.disk_io() == io_before
    assert engine.stats.get("memo_hits") == 50


def test_engine_shares_pool_across_deadlines(tmp_path):
    """Queries differing only in SLO readout (deadline/percentile)
    reuse the same pool simulations."""
    engine = QueryEngine(cache_dir=tmp_path)
    engine.answer(tiny_query(deadline=1.0))
    runs = engine.stats.get("scenario_runs")
    engine.answer(tiny_query(deadline=2.0))
    engine.answer(tiny_query(deadline=3.0, percentile=50.0))
    assert engine.stats.get("scenario_runs") == runs
    assert engine.stats.get("computed") == 3  # re-folded, not re-run


def test_engine_lru_eviction_falls_back_to_disk(tmp_path):
    engine = QueryEngine(cache_dir=tmp_path, memo_capacity=2)
    q1, q2, q3 = (tiny_query(deadline=d) for d in (1.0, 2.0, 3.0))
    a1 = engine.answer(q1)
    engine.answer(q2)
    engine.answer(q3)  # evicts q1
    assert engine.stats.get("memo_evictions") == 1
    before = engine.stats.get("computed")
    again = engine.answer(q1)
    assert engine.stats.get("answer_disk_hits") == 1
    assert engine.stats.get("computed") == before  # disk tier, no recompute
    assert again.canonical_json() == a1.canonical_json()


def test_engine_memory_only_mode():
    clear_memo()
    engine = QueryEngine(cache_dir=None)
    q = tiny_query()
    a1 = engine.answer(q)
    a2 = engine.answer(q)
    assert a1.canonical_json() == a2.canonical_json()
    assert engine.disk_io() == 0
    assert engine.preload_answers() == 0


def test_engine_restart_reuses_disk_answers(tmp_path):
    engine1 = QueryEngine(cache_dir=tmp_path)
    queries = [tiny_query(deadline=d) for d in (0.5, 1.0, 1.5)]
    first = [engine1.answer(q).canonical_json() for q in queries]
    clear_memo()  # a new process: no in-memory scenario results either
    engine2 = QueryEngine(cache_dir=tmp_path)
    assert engine2.preload_answers() == len(queries)
    second = [engine2.answer(q).canonical_json() for q in queries]
    assert second == first
    assert engine2.stats.get("scenario_runs") == 0
    assert engine2.stats.get("computed") == 0
    assert engine2.stats.get("memo_hits") == len(queries)


def test_engine_rejects_bad_config(tmp_path):
    with pytest.raises(ValueError):
        QueryEngine(cache_dir=tmp_path, memo_capacity=0)


# -- batch pricing ------------------------------------------------------------

def test_group_pricer_amortizes_enumeration():
    members = tuple((f"n{i}", 3e9 - i * 1e8) for i in range(8))
    plans = [WorkloadPlan(app="heat", n=64, nit=20, level=lvl)
             for lvl in ("O0", "O1", "O3")]
    pricer = GroupPricer()
    specs = [workloads.make_workload(p, 4) for p in plans]
    priced = pricer.price_batch(specs, members, 4)
    assert pricer.enumerations == 1  # one pool -> one enumeration
    assert pricer.pricings == 3
    # each answer is the brute-force argmin with the Submitter tie-break
    for spec, (group, makespan) in zip(specs, priced):
        want = min(
            candidate_groups(members, 4),
            key=lambda g: (predict_makespan(spec, g),
                           tuple(sorted(n for n, _s in g))),
        )
        assert group == want
        assert makespan == predict_makespan(spec, want)
    # a different pool enumerates again
    pricer.price_batch(specs[:1], members[:5], 4)
    assert pricer.enumerations == 2


def test_engine_price_batch_validation(tmp_path):
    engine = QueryEngine(cache_dir=tmp_path)
    plat = PlatformPlan(kind="cluster", n_hosts=8)
    wl = [WorkloadPlan(app="heat", n=64, nit=20, level="O1")]
    with pytest.raises(ValueError):
        engine.price_batch(plat, pool=2, n_peers=4, workload_plans=wl)
    with pytest.raises(ValueError):
        engine.price_batch(plat, pool=99, n_peers=4, workload_plans=wl)
    priced = engine.price_batch(plat, pool=6, n_peers=2, workload_plans=wl)
    assert len(priced) == 1
    assert len(priced[0]["members"]) == 2
    assert priced[0]["makespan"] > 0


# -- protocol units -----------------------------------------------------------

def _protocol_error(line):
    with pytest.raises(ProtocolError) as excinfo:
        parse_request(line)
    return excinfo.value.error


def test_parse_request_envelope():
    ok = parse_request(encode({"op": "ping"}).rstrip(b"\n"))
    assert ok["op"] == "ping"
    assert _protocol_error(b"not json at all") == "bad-json"
    assert _protocol_error(b'{"op": "ping"') == "bad-json"  # truncated
    assert _protocol_error(b"\xff\xfe\x01") == "bad-json"  # not UTF-8
    assert _protocol_error(b"[1, 2]") == "bad-request"
    assert _protocol_error(b'{"op": "frobnicate"}') == "unknown-op"
    assert _protocol_error(b'{}') == "unknown-op"
    assert _protocol_error(b'{"op": "ping", "protocol": 99}') == \
        "bad-protocol-version"
    assert _protocol_error(b"x" * (MAX_LINE_BYTES + 1)) == "line-too-long"


def test_parse_address_forms():
    assert parse_address("127.0.0.1:7011") == \
        (socket.AF_INET, ("127.0.0.1", 7011))
    assert parse_address("/tmp/serve.sock") == \
        (socket.AF_UNIX, "/tmp/serve.sock")
    # a non-numeric port is a Unix path, not a TCP parse error
    assert parse_address("weird:name")[0] == socket.AF_UNIX


# -- daemon adversarial -------------------------------------------------------

@pytest.fixture
def daemon(tmp_path):
    engine = QueryEngine(cache_dir=tmp_path / "cache")
    with ServeDaemon(engine, address="127.0.0.1:0") as d:
        yield d


def test_daemon_survives_garbage_and_keeps_serving(daemon):
    with ServeClient(daemon.address) as client:
        reply = client.request_raw(b"}{ total garbage \xc3\x28\n")
        assert reply["ok"] is False
        assert reply["error"] == "bad-json"
        # same connection still serves
        assert client.request({"op": "ping"})["ok"] is True
        reply = client.request({"op": "query", "protocol": 123,
                                "query": TINY})
        assert reply["error"] == "bad-protocol-version"
        reply = client.request({"op": "query",
                                "query": dict(TINY, deadlien=1.0)})
        assert reply["ok"] is False
        assert reply["error"] == "bad-query"
        assert "deadlien" in reply["detail"]
        assert client.request({"op": "ping"})["ok"] is True


def test_daemon_truncated_frame_gets_no_phantom_reply(daemon):
    # a half-sent request (no newline) must never be answered
    family, sockaddr = parse_address(daemon.address)
    sock = socket.socket(family, socket.SOCK_STREAM)
    sock.connect(sockaddr)
    sock.sendall(b'{"op": "ping"')  # no terminator
    sock.settimeout(0.5)
    with pytest.raises(socket.timeout):
        sock.recv(1024)
    sock.close()
    # and the daemon is still fine
    with ServeClient(daemon.address) as client:
        assert client.request({"op": "ping"})["ok"] is True


def test_daemon_oversized_batch_is_atomic(daemon):
    engine_queries = daemon.engine.stats.get("queries")
    with ServeClient(daemon.address) as client:
        reply = client.request(
            {"op": "batch", "queries": [TINY] * (MAX_BATCH + 1)}
        )
        assert reply["error"] == "batch-too-large"
        # one bad query poisons the whole batch *before* any compute
        reply = client.request(
            {"op": "batch",
             "queries": [TINY, dict(TINY, deadline=-5.0)]}
        )
        assert reply["error"] == "bad-query"
    assert daemon.engine.stats.get("queries") == engine_queries


def test_daemon_batch_needs_a_list(daemon):
    with ServeClient(daemon.address) as client:
        assert client.request({"op": "batch"})["error"] == "bad-request"
        assert client.request({"op": "batch", "queries": "x"})["error"] \
            == "bad-request"
        assert client.request({"op": "query"})["error"] == "bad-request"


def test_daemon_survives_disconnect_mid_response(daemon):
    # fire a query and slam the connection without reading the reply
    for _ in range(3):
        family, sockaddr = parse_address(daemon.address)
        sock = socket.socket(family, socket.SOCK_STREAM)
        sock.connect(sockaddr)
        sock.sendall(encode({"op": "query", "query": TINY}))
        sock.close()
    deadline = time.time() + 5.0
    while time.time() < deadline:
        with ServeClient(daemon.address) as client:
            if client.request({"op": "ping"})["ok"]:
                break
    else:
        pytest.fail("daemon stopped serving after client disconnects")


def test_daemon_price_op_validation(daemon):
    with ServeClient(daemon.address) as client:
        assert client.request({"op": "price"})["error"] == "bad-request"
        reply = client.request({"op": "price",
                                "workloads": [{"sizzle": 1}]})
        assert reply["ok"] is False
        reply = client.request(
            {"op": "price", "platform": TINY["platform"],
             "workloads": [TINY["workload"]], "n_peers": 2, "pool": 4}
        )
        assert reply["ok"] is True
        assert reply["priced"][0]["makespan"] > 0


def test_daemon_over_unix_socket(tmp_path):
    engine = QueryEngine(cache_dir=tmp_path / "cache")
    path = str(tmp_path / "serve.sock")
    with ServeDaemon(engine, address=path) as daemon:
        assert daemon.address == path
        with ServeClient(path) as client:
            assert client.request({"op": "ping"})["ok"] is True
            reply = client.request({"op": "query", "query": TINY})
            assert reply["ok"] is True
    # the socket file is cleaned up on drain
    assert not (tmp_path / "serve.sock").exists()


def test_daemon_shutdown_op_drains(tmp_path):
    engine = QueryEngine(cache_dir=tmp_path / "cache")
    daemon = ServeDaemon(engine, address="127.0.0.1:0").start()
    with ServeClient(daemon.address) as client:
        assert client.request({"op": "shutdown"})["draining"] is True
    deadline = time.time() + 5.0
    while daemon.running and time.time() < deadline:
        time.sleep(0.05)
    assert not daemon.running
    daemon.stop()  # idempotent


def test_daemon_no_thread_leak(tmp_path):
    # thread *identity* sets, not counts: an unrelated thread from a
    # preceding test exiting (or persisting) mid-window shifts a
    # count-based baseline and fails this test depending on suite
    # order — only threads this daemon created can count as leaked
    baseline = set(threading.enumerate())
    engine = QueryEngine(cache_dir=tmp_path / "cache")
    # workers bounds concurrent *open* connections: six parked clients
    # need six connection slots
    with ServeDaemon(engine, address="127.0.0.1:0", workers=6) as daemon:
        clients = [ServeClient(daemon.address) for _ in range(6)]
        for client in clients:
            assert client.request({"op": "ping"})["ok"] is True
        assert set(threading.enumerate()) - baseline  # daemon threads live
        for client in clients:
            client.close()
    deadline = time.time() + 5.0
    while set(threading.enumerate()) - baseline and time.time() < deadline:
        time.sleep(0.05)
    leaked = set(threading.enumerate()) - baseline
    assert not leaked, f"leaked threads: {[t.name for t in leaked]}"


def test_daemon_stats_op(daemon):
    with ServeClient(daemon.address) as client:
        client.request({"op": "query", "query": TINY})
        reply = client.request({"op": "stats"})
    assert reply["ok"] is True
    assert reply["stats"]["computed"] == 1
    assert reply["stats"]["scenario_runs"] == TINY["pool"]
    assert reply["daemon"]["protocol"] == PROTOCOL_VERSION
    assert reply["daemon"]["address"] == daemon.address


# -- identity: serial vs concurrent, restart recovery -------------------------

def _mixed_stream(count, seed=0):
    """A deterministic mixed query stream over a few workload shapes."""
    rng = random.Random(seed)
    distinct = [
        dict(TINY, deadline=0.25 + 0.05 * i, percentile=p,
             workload=dict(TINY["workload"], nit=nit))
        for i in range(5)
        for p in (50.0, 90.0, 99.0)
        for nit in (20, 25)
    ]
    return [distinct[rng.randrange(len(distinct))] for _ in range(count)]


def _serve_stream(address, payloads, out, idx):
    with ServeClient(address, timeout=60.0) as client:
        for payload in payloads:
            reply = client.request({"op": "query", "query": payload})
            assert reply["ok"], reply
            out[idx].append(
                json.dumps(reply["answer"], sort_keys=True,
                           separators=(",", ":"))
            )


def test_serial_vs_concurrent_byte_identity(tmp_path):
    engine = QueryEngine(cache_dir=tmp_path / "cache")
    stream = _mixed_stream(80, seed=1)
    with ServeDaemon(engine, address="127.0.0.1:0") as daemon:
        serial = [[]]
        _serve_stream(daemon.address, stream, serial, 0)
        expected = dict(zip(
            (QuerySpec.from_dict(p).query_hash() for p in stream),
            serial[0],
        ))
        # 4 clients, each replaying its own shuffle of the same stream
        shuffles = []
        for i in range(4):
            s = list(stream)
            random.Random(100 + i).shuffle(s)
            shuffles.append(s)
        outs = [[] for _ in range(4)]
        threads = [
            threading.Thread(target=_serve_stream,
                             args=(daemon.address, shuffles[i], outs, i))
            for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    for i in range(4):
        for payload, got in zip(shuffles[i], outs[i]):
            qh = QuerySpec.from_dict(payload).query_hash()
            assert got == expected[qh], \
                "concurrent answer drifted from serial replay"


def test_restarted_daemon_reanswers_identically(tmp_path):
    """Kill-and-restart identity: a fresh daemon over the same cache
    dir re-answers the same stream byte-identically, from the on-disk
    memo, with zero new simulations."""
    cache = tmp_path / "cache"
    stream = _mixed_stream(40, seed=2)
    engine1 = QueryEngine(cache_dir=cache)
    with ServeDaemon(engine1, address="127.0.0.1:0") as daemon:
        first = [[]]
        _serve_stream(daemon.address, stream, first, 0)
    # "kill": drop every in-memory artifact a live daemon had
    clear_memo()
    del engine1
    engine2 = QueryEngine(cache_dir=cache)
    assert engine2.preload_answers() > 0
    with ServeDaemon(engine2, address="127.0.0.1:0") as daemon:
        second = [[]]
        _serve_stream(daemon.address, stream, second, 0)
    assert second[0] == first[0]
    assert engine2.stats.get("scenario_runs") == 0
    assert engine2.stats.get("computed") == 0


# -- soak ---------------------------------------------------------------------

SOAK_QUERIES = 5000
SOAK_CLIENTS = 4
#: Pinned throughput floor (queries/s) across the whole concurrent
#: soak. Local runs sustain thousands/s; the floor only has to catch
#: "the memo stopped carrying the hot path" (a >10x collapse).
SOAK_MIN_QPS = 150.0


def test_soak_sustained_mixed_load(tmp_path):
    """>=5k mixed queries over >=4 concurrent clients: zero answer
    drift vs serial replay, pinned throughput floor, counter-verified
    cache behaviour.  Exempt (by name) from the CI duration tripwire:
    sustained wall-clock is the workload here.
    """
    engine = QueryEngine(cache_dir=tmp_path / "cache")
    stream = _mixed_stream(SOAK_QUERIES, seed=3)
    per_client = [stream[i::SOAK_CLIENTS] for i in range(SOAK_CLIENTS)]
    with ServeDaemon(engine, address="127.0.0.1:0",
                     workers=SOAK_CLIENTS) as daemon:
        # serial replay of the distinct queries = the reference truth
        distinct = {QuerySpec.from_dict(p).query_hash(): p for p in stream}
        serial = [[]]
        _serve_stream(daemon.address, list(distinct.values()), serial, 0)
        expected = dict(zip(distinct.keys(), serial[0]))
        runs_after_serial = engine.stats.get("scenario_runs")

        outs = [[] for _ in range(SOAK_CLIENTS)]
        threads = [
            threading.Thread(target=_serve_stream,
                             args=(daemon.address, per_client[i], outs, i))
            for i in range(SOAK_CLIENTS)
        ]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - t0

    # zero drift: every one of the 5k concurrent answers byte-matches
    # its serial-replay reference
    answered = 0
    for i in range(SOAK_CLIENTS):
        assert len(outs[i]) == len(per_client[i])
        for payload, got in zip(per_client[i], outs[i]):
            qh = QuerySpec.from_dict(payload).query_hash()
            assert got == expected[qh], "soak answer drift"
            answered += 1
    assert answered == SOAK_QUERIES

    # the soak added zero simulations: pure memo traffic
    assert engine.stats.get("scenario_runs") == runs_after_serial
    assert engine.stats.get("memo_hits") >= SOAK_QUERIES

    qps = SOAK_QUERIES / wall
    print(f"soak: {SOAK_QUERIES} queries / {SOAK_CLIENTS} clients in "
          f"{wall:.2f}s = {qps:.0f} q/s")
    assert qps >= SOAK_MIN_QPS, (
        f"soak throughput {qps:.0f} q/s under the {SOAK_MIN_QPS} floor"
    )


# -- tripwire -----------------------------------------------------------------

def test_tripwire_constant_and_exemptions():
    assert tripwire.TRIPWIRE_SECONDS == 20.0
    report = [
        " 1.01s call     tests/test_x.py::test_fast",
        "25.00s call     tests/test_x.py::test_slow",
        "30.50s setup    tests/test_y.py::test_slow_setup",
        f"99.00s call    tests/test_serve.py::test_soak_sustained_mixed_load",
        "0.20s teardown tests/test_x.py::test_fast",
    ]
    slow = tripwire.check(report)
    assert slow == [
        "25.00s call     tests/test_x.py::test_slow",
        "30.50s setup    tests/test_y.py::test_slow_setup",
    ]
    assert tripwire.check(report, limit=1000.0) == []


def test_tripwire_exemption_names_a_real_soak_test():
    """A renamed soak test must not silently lose its exemption."""
    here = {name for name in globals() if name.startswith("test_soak_")}
    assert here, "no soak test left in tests/test_serve.py"
    for marker in tripwire.EXEMPT:
        path, _, prefix = marker.partition("::")
        assert path == "tests/test_serve.py"
        assert any(name.startswith(prefix) for name in here), (
            f"tripwire exemption {marker!r} matches no test in this file"
        )


def test_tripwire_main(tmp_path):
    good = tmp_path / "good.txt"
    good.write_text("0.5s call tests/test_x.py::test_ok\n")
    bad = tmp_path / "bad.txt"
    bad.write_text("50.0s call tests/test_x.py::test_slow\n")
    assert tripwire.main([str(good)]) == 0
    assert tripwire.main([str(bad)]) == 1
    assert tripwire.main([]) == 2


# -- CLI ----------------------------------------------------------------------

def test_cli_query_local(tmp_path, capsys):
    from repro.serve.cli import main

    rc = main(["query", "--local", "--cache-dir", str(tmp_path),
               "--deadline", "1.0", "--percentile", "90", "--pool", "3",
               "--set", "workload.app=heat", "--set", "workload.n=64",
               "--set", "workload.nit=20", "--set", "workload.level=O1",
               "--set", "platform.n_hosts=8", "--set", "n_peers=2"])
    assert rc == 0
    answer = json.loads(capsys.readouterr().out.strip())
    assert answer["pool"] == 3
    assert answer["percentile"] == 90.0
    assert answer["query_hash"] == tiny_query().query_hash()


def test_cli_bad_usage(tmp_path, capsys):
    from repro.serve.cli import main

    assert main(["query", "--local", "--no-cache", "--deadline", "-1"]) == 2
    assert "error:" in capsys.readouterr().err
    assert main(["query", "--local", "--no-cache", "--deadline", "1",
                 "--set", "nope=1"]) == 2
    assert main(["query", "--address", "127.0.0.1:1",  # nothing listens
                 "--deadline", "1"]) == 2


def test_cli_batch_and_stats_against_live_daemon(tmp_path, capsys):
    from repro.serve.cli import main

    engine = QueryEngine(cache_dir=tmp_path / "cache")
    sock_path = str(tmp_path / "serve.sock")
    ndjson = tmp_path / "queries.ndjson"
    ndjson.write_text("".join(
        json.dumps(dict(TINY, deadline=0.5 + 0.1 * i)) + "\n"
        for i in range(4)
    ))
    with ServeDaemon(engine, address=sock_path):
        rc = main(["batch", "--address", sock_path, str(ndjson)])
        out = capsys.readouterr().out
        assert rc == 0
        answers = [json.loads(line) for line in out.splitlines()]
        assert len(answers) == 4
        assert all(a["pool"] == 3 for a in answers)
        rc = main(["stats", "--address", sock_path])
        assert rc == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["ok"] is True
        assert stats["stats"]["served"] == 4
