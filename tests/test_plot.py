"""Tests for the ASCII chart renderer."""

import pytest

from repro.analysis.plot import ascii_chart


SERIES = {
    "grid5000": {2: 40.0, 4: 20.0, 8: 10.0, 16: 5.0, 32: 2.5},
    "xdsl": {2: 63.0, 4: 50.0, 8: 57.0, 16: 60.0, 32: 66.0},
}


def test_chart_contains_axes_and_legend():
    chart = ascii_chart(SERIES)
    assert "+---" in chart
    assert "o grid5000" in chart
    assert "x xdsl" in chart
    # tick labels present
    for x in ("2", "32"):
        assert x in chart


def test_markers_positioned_by_value():
    chart = ascii_chart(SERIES, width=40, height=10)
    lines = chart.splitlines()
    # the top rows belong to the largest values (xdsl ~66)
    top = "\n".join(lines[:3])
    assert "x" in top
    # cluster curve's 2.5 s tail sits near the bottom
    bottom = "\n".join(lines[7:10])
    assert "o" in bottom


def test_single_point_series():
    chart = ascii_chart({"only": {4: 1.0}})
    assert "o only" in chart


def test_empty_rejected():
    with pytest.raises(ValueError):
        ascii_chart({})
    with pytest.raises(ValueError):
        ascii_chart({"flat": {2: 0.0}})


def test_all_rows_equal_width_before_legend():
    chart = ascii_chart(SERIES, width=30, height=8)
    lines = chart.splitlines()
    plot_rows = lines[:8]
    assert len({len(l) for l in plot_rows}) == 1
