"""Seeded-determinism regression tests.

The cache and the parallel sweep are only sound if a ScenarioSpec is a
pure function of its fields — these tests pin that contract, plus the
desim tie-breaking rule it ultimately rests on.
"""

from repro.desim import Simulator
from repro.scenarios import ScenarioSpec, run_scenario
from repro.scenarios.spec import PlatformPlan, WorkloadPlan


def small_reference(seed: int) -> ScenarioSpec:
    return ScenarioSpec(
        name="det-ref", kind="reference",
        platform=PlatformPlan(kind="cluster", n_hosts=8),
        workload=WorkloadPlan(app="obstacle", n=256, nit=40, level="O2"),
        n_peers=4, seed=seed,
    )


class TestScenarioDeterminism:
    def test_same_spec_byte_identical_results(self):
        """Two fresh executions of one spec (reference kind, including
        the seeded timing-noise stream) serialize identically."""
        a = run_scenario(small_reference(seed=5))
        b = run_scenario(small_reference(seed=5))
        assert a.ok and b.ok
        assert a.canonical_json() == b.canonical_json()

    def test_seed_actually_matters(self):
        a = run_scenario(small_reference(seed=5))
        b = run_scenario(small_reference(seed=6))
        assert a.t != b.t  # the jitter stream depends on the seed

    def test_predict_kind_deterministic(self):
        spec = ScenarioSpec(
            name="det-pred", kind="predict",
            platform=PlatformPlan(kind="lan", n_hosts=16),
            workload=WorkloadPlan(app="heat", n=64, nit=20, level="O0"),
            n_peers=4, host_policy="spread",
        )
        assert (run_scenario(spec).canonical_json()
                == run_scenario(spec).canonical_json())


class TestDesimOrdering:
    def test_same_instant_events_fire_in_scheduling_order(self):
        """Events scheduled for the same instant fire in the order they
        were scheduled (the monotone-sequence tie-break) — the property
        every seeded replay depends on."""
        sim = Simulator()
        fired = []
        for i in range(50):
            sim.schedule(1.0, fired.append, i)
        sim.schedule(0.5, fired.append, "early")
        sim.run()
        assert fired == ["early"] + list(range(50))

    def test_interleaved_same_instant_scheduling(self):
        """Tie-break order holds even when same-instant events are
        scheduled from within other events."""
        sim = Simulator()
        fired = []

        def parent(tag):
            fired.append(tag)
            # children land at the *same* instant as the remaining parents
            sim.schedule(0.0, fired.append, f"{tag}-child")

        sim.schedule(2.0, parent, "a")
        sim.schedule(2.0, parent, "b")
        sim.run()
        assert fired == ["a", "b", "a-child", "b-child"]

    def test_cancelled_events_do_not_fire(self):
        sim = Simulator()
        fired = []
        keep = sim.schedule(1.0, fired.append, "keep")
        drop = sim.schedule(1.0, fired.append, "drop")
        drop.cancel()
        sim.run()
        assert fired == ["keep"]
        assert keep.time == 1.0
