"""Tests for CFG construction and the static analyses."""

import pytest

from repro.dperf.minic import (
    analyze_function,
    build_cfg,
    call_graph,
    cast as A,
    count_operations,
    def_use,
    estimate_trip_count,
    find_comm_calls,
    loop_depth_map,
    parse,
)


def cfg_of(src, name=None):
    prog = parse(src)
    func = prog.funcs[0] if name is None else prog.func(name)
    return build_cfg(func)


class TestCfg:
    def test_straight_line_single_block(self):
        cfg = cfg_of("void f() { int a = 1; int b = 2; a = a + b; }")
        # entry (with stmts) → exit
        entry = cfg.block(cfg.entry)
        assert len(entry.stmts) == 3
        assert entry.succs == [cfg.exit]

    def test_if_creates_diamond(self):
        cfg = cfg_of("void f(int x) { if (x > 0) x = 1; x = 2; }")
        entry = cfg.block(cfg.entry)
        assert entry.cond is not None
        assert len(entry.succs) == 2  # then + join

    def test_if_else_two_arms(self):
        cfg = cfg_of("void f(int x) { if (x) x = 1; else x = 2; }")
        entry = cfg.block(cfg.entry)
        then_b, else_b = None, None
        for bid in entry.succs:
            if cfg.block(bid).label == "then":
                then_b = cfg.block(bid)
            if cfg.block(bid).label == "else":
                else_b = cfg.block(bid)
        assert then_b is not None and else_b is not None

    def test_while_loop_depth(self):
        cfg = cfg_of("void f(int n) { while (n) { n--; } }")
        depths = {b.label: b.loop_depth for b in cfg.blocks}
        assert depths["while-body"] == 1
        assert depths["while-exit"] == 0

    def test_nested_loop_depth(self):
        cfg = cfg_of(
            "void f(int n) { for (int i=0;i<n;i++) { for (int j=0;j<n;j++) { n=n; } } }"
        )
        assert cfg.max_loop_depth() == 2

    def test_loop_back_edge_exists(self):
        cfg = cfg_of("void f(int n) { while (n) { n--; } }")
        header = next(b for b in cfg.blocks if b.label == "while-header")
        body = next(b for b in cfg.blocks if b.label == "while-body")
        assert header.bid in body.succs

    def test_break_edges_to_exit_block(self):
        cfg = cfg_of("void f() { while (1) { break; } }")
        body = next(b for b in cfg.blocks if b.label == "while-body")
        wexit = next(b for b in cfg.blocks if b.label == "while-exit")
        assert wexit.bid in body.succs

    def test_continue_edges_to_step_in_for(self):
        cfg = cfg_of("void f(int n) { for (int i=0;i<n;i++) { continue; } }")
        body = next(b for b in cfg.blocks if b.label == "for-body")
        step = next(b for b in cfg.blocks if b.label == "for-step")
        assert step.bid in body.succs

    def test_return_edges_to_function_exit(self):
        cfg = cfg_of("int f(int x) { if (x) return 1; return 0; }")
        exits = [b for b in cfg.blocks if cfg.exit in b.succs]
        assert len(exits) >= 2

    def test_all_reachable_from_entry(self):
        cfg = cfg_of(
            "int f(int n) { int s=0; for (int i=0;i<n;i++) { if (i%2) s+=i; } return s; }"
        )
        reach = set(cfg.reachable())
        assert cfg.exit in reach
        # at most the unreachable-labelled blocks are missing
        for b in cfg.blocks:
            if b.bid not in reach:
                assert b.label == "unreachable" or b.is_empty


class TestLoopDepthMap:
    def test_depths(self):
        prog = parse(
            """
            void f(int n) {
                n = 1;
                for (int i = 0; i < n; i++) {
                    n = 2;
                    while (n) { n = 3; }
                }
            }
            """
        )
        func = prog.func("f")
        depths = loop_depth_map(func)
        by_depth = {}
        for stmt, d in depths.items():
            if isinstance(stmt, A.ExprStmt):
                by_depth.setdefault(d, []).append(stmt)
        assert len(by_depth[0]) == 1  # n = 1
        assert len(by_depth[1]) == 1  # n = 2
        assert len(by_depth[2]) == 1  # n = 3


class TestCommCalls:
    SRC = """
    void exchange(double u[], int n, int rank) {
        for (int it = 0; it < 10; it++) {
            p2psap_isend(rank + 1, u, n);
            p2psap_recv(rank + 1, u, n);
        }
        p2psap_barrier();
    }
    """

    def test_comm_calls_found_with_depth(self):
        sites = find_comm_calls(parse(self.SRC))
        apis = {(s.api, s.loop_depth) for s in sites}
        assert ("p2psap_isend", 1) in apis
        assert ("p2psap_recv", 1) in apis
        assert ("p2psap_barrier", 0) in apis

    def test_send_recv_flags(self):
        sites = find_comm_calls(parse(self.SRC))
        sends = [s for s in sites if s.is_send]
        recvs = [s for s in sites if s.is_recv]
        assert len(sends) == 1 and len(recvs) == 1

    def test_no_comm_calls(self):
        assert find_comm_calls(parse("void f() { }")) == []


class TestDefUse:
    def test_defs_and_uses(self):
        cfg = cfg_of("void f(int a) { int b = a + 1; b = b * 2; }")
        du = def_use(cfg)
        entry_defs = du.defs[cfg.entry]
        entry_uses = du.uses[cfg.entry]
        assert "b" in entry_defs
        assert "a" in entry_uses

    def test_array_target_defs_base(self):
        cfg = cfg_of("void f(double u[], int i) { u[i] = 1.0; }")
        du = def_use(cfg)
        assert "u" in du.defs[cfg.entry]
        assert "i" in du.uses[cfg.entry]

    def test_compound_assign_reads_target(self):
        cfg = cfg_of("void f(int x) { x += 1; }")
        du = def_use(cfg)
        assert "x" in du.defs[cfg.entry] and "x" in du.uses[cfg.entry]

    def test_flows_cross_blocks(self):
        cfg = cfg_of(
            "void f(int n) { int s = 0; while (n) { s = s + n; n--; } }"
        )
        du = def_use(cfg)
        flows = du.flows()
        assert any(var == "s" for _d, _u, var in flows)


class TestCallGraph:
    def test_simple_graph(self):
        prog = parse(
            """
            int leaf(int x) { return x; }
            int mid(int x) { return leaf(x) + 1; }
            int main() { return mid(3); }
            """
        )
        g = call_graph(prog)
        assert g["main"] == {"mid"}
        assert g["mid"] == {"leaf"}
        assert g["leaf"] == set()

    def test_builtins_excluded(self):
        prog = parse("void f() { printf(\"x\"); }")
        assert call_graph(prog)["f"] == set()


class TestTripCount:
    def loop(self, src):
        prog = parse(f"void f(int n, int m) {{ {src} }}")
        return prog.func("f").body.stmts[0]

    def test_literal_bounds(self):
        assert estimate_trip_count(self.loop("for (int i = 0; i < 10; i++) ;")) == 10

    def test_le_bound(self):
        assert estimate_trip_count(self.loop("for (int i = 1; i <= 10; i++) ;")) == 10

    def test_step_two(self):
        assert estimate_trip_count(self.loop("for (int i = 0; i < 10; i += 2) ;")) == 5

    def test_countdown(self):
        assert estimate_trip_count(self.loop("for (int i = 10; i > 0; i--) ;")) == 10

    def test_env_resolves_names(self):
        loop = self.loop("for (int i = 0; i < n; i++) ;")
        assert estimate_trip_count(loop, {"n": 64}) == 64
        assert estimate_trip_count(loop) is None

    def test_arith_bound(self):
        loop = self.loop("for (int i = 1; i < n - 1; i++) ;")
        assert estimate_trip_count(loop, {"n": 10}) == 8

    def test_non_canonical_returns_none(self):
        loop = self.loop("for (int i = 0; i < n; i = i * 2) ;")
        assert estimate_trip_count(loop, {"n": 8}) is None

    def test_zero_or_negative_trips(self):
        assert estimate_trip_count(self.loop("for (int i = 5; i < 5; i++) ;")) == 0

    def test_i_assign_plus(self):
        loop = self.loop("for (int i = 0; i < 9; i = i + 3) ;")
        assert estimate_trip_count(loop) == 3


class TestOpCensus:
    def test_counts(self):
        prog = parse(
            "void f(double u[], int i) { u[i] = u[i + 1] * 2.0 + 1.0; if (i) i--; }"
        )
        ops = count_operations(prog.func("f").body)
        assert ops["mem"] == 2
        assert ops["flops"] >= 2
        assert ops["branches"] == 1
        assert ops["assigns"] == 1

    def test_analyze_function_bundle(self):
        prog = parse("int f(int n) { int s = 0; for (int i=0;i<n;i++) s+=i; return s; }")
        info = analyze_function(prog.func("f"))
        assert info["name"] == "f"
        assert info["max_loop_depth"] == 1
        assert info["n_blocks"] >= 4
