"""Tests for block-benchmark scaling, tiling, and the predictor pipeline."""

import pytest

from repro.dperf import (
    DPerfPredictor,
    GccModel,
    REFERENCE_MACHINE,
    ScaleError,
    ScalePlan,
    eval_affine,
    materialize,
    predict_many_levels,
    scale_skeleton,
    tile_iterations,
)
from repro.dperf.minic import parse_expr
from repro.platforms import build_cluster
from repro.simx import Compute, validate_trace_set

# A miniature iterative halo-exchange app: the same shape as the
# obstacle problem (time loop marked as a dperf region, inner compute
# loop over n, neighbour exchange, periodic allreduce every 2 iters).
ITER_APP = """
double work(double u[], int n) {
    double acc = 0.0;
    for (int i = 1; i < n - 1; i++) {
        u[i] = 0.5 * (u[i - 1] + u[i + 1]);
        acc = acc + u[i];
    }
    return acc;
}

double main(int n, int nit) {
    int rank = p2psap_rank();
    int size = p2psap_size();
    double u[n];
    for (int i = 0; i < n; i++) u[i] = (double)(i + rank);
    double acc = 0.0;
    for (int it = 0; it < nit; it++) {
        dperf_region_begin("iter");
        if (size > 1) {
            int peer = rank == 0 ? 1 : 0;
            p2psap_isend(peer, u, n);
            p2psap_recv(peer, u, n);
        }
        acc = work(u, n);
        if (it % 2 == 1) {
            acc = p2psap_allreduce_max(acc);
        }
        dperf_region_end("iter");
    }
    return acc;
}
"""


@pytest.fixture(scope="module")
def predictor():
    return DPerfPredictor(ITER_APP, entry="main")


@pytest.fixture(scope="module")
def cal_runs(predictor):
    # calibration: n=16, nit=6 (>= (1+1)*2 iterations for cycle_len=2)
    return predictor.execute(2, args=[16, 6])


class TestEvalAffine:
    def test_literals_and_names(self):
        assert eval_affine(parse_expr("3"), {}) == 3.0
        assert eval_affine(parse_expr("n"), {"n": 8}) == 8.0
        assert eval_affine(parse_expr("n + 2"), {"n": 8}) == 10.0
        assert eval_affine(parse_expr("2 * n - 1"), {"n": 8}) == 15.0
        assert eval_affine(parse_expr("n / 2"), {"n": 8}) == 4.0

    def test_unresolved_name(self):
        assert eval_affine(parse_expr("m + 1"), {"n": 8}) is None

    def test_negation_and_cast(self):
        assert eval_affine(parse_expr("-n"), {"n": 5}) == -5.0
        assert eval_affine(parse_expr("(double)n"), {"n": 5}) == 5.0


class TestTiling:
    def test_tile_to_more_iterations(self, predictor, cal_runs):
        entries = cal_runs[0].entries
        tiled = tile_iterations(entries, "iter", nit_target=20, cycle_len=2)
        from repro.dperf import CommRecord

        def count_allreduce(es):
            return sum(
                1 for e in es
                if isinstance(e, CommRecord) and e.kind == "allreduce"
            )

        # 20 iterations with an allreduce every 2nd → 10 allreduces
        assert count_allreduce(tiled) == 10

    def test_tile_preserves_phase(self, predictor, cal_runs):
        from repro.dperf import CommRecord

        tiled = tile_iterations(cal_runs[0].entries, "iter", 7, cycle_len=2)
        # 7 iterations, allreduce on odd phases → 3 allreduces
        n_ar = sum(1 for e in tiled
                   if isinstance(e, CommRecord) and e.kind == "allreduce")
        assert n_ar == 3

    def test_insufficient_calibration_iterations(self, predictor):
        runs = predictor.execute(1, args=[8, 3])
        with pytest.raises(ScaleError, match="at least"):
            tile_iterations(runs[0].entries, "iter", 10, cycle_len=2,
                            warmup_cycles=1)

    def test_unknown_region_means_no_iterations(self, predictor, cal_runs):
        with pytest.raises(ScaleError, match="at least"):
            tile_iterations(cal_runs[0].entries, "ghost-region", 5)


class TestCensusScaling:
    def test_compute_scales_with_n(self, predictor, cal_runs):
        """Scaling n 16 → 160 must scale compute ns by ≈10×."""
        plan_small = ScalePlan(
            env_cal={"n": 16}, env_target={"n": 16}, nit_target=4, cycle_len=2
        )
        plan_big = ScalePlan(
            env_cal={"n": 16}, env_target={"n": 160}, nit_target=4, cycle_len=2
        )
        table = predictor.block_table
        gcc = GccModel("O0")
        small = materialize(
            scale_skeleton(cal_runs[0].entries, table, plan_small),
            table, REFERENCE_MACHINE, gcc,
        )
        big = materialize(
            scale_skeleton(cal_runs[0].entries, table, plan_big),
            table, REFERENCE_MACHINE, gcc,
        )
        ns_small = sum(e.ns for e in small if isinstance(e, Compute))
        ns_big = sum(e.ns for e in big if isinstance(e, Compute))
        assert ns_big / ns_small == pytest.approx(10.0, rel=0.15)

    def test_message_sizes_reevaluated(self, predictor, cal_runs):
        plan = ScalePlan(
            env_cal={"n": 16}, env_target={"n": 64}, nit_target=2, cycle_len=2
        )
        table = predictor.block_table
        events = materialize(
            scale_skeleton(cal_runs[0].entries, table, plan),
            table, REFERENCE_MACHINE, GccModel("O0"),
        )
        from repro.simx import Send

        sizes = {e.size for e in events if isinstance(e, Send)}
        assert sizes == {64 * 8}

    def test_scaled_trace_against_direct_execution(self, predictor):
        """Gold standard: trace scaled 16→48 must match the trace of an
        actual n=48 run (same ns within a few %, same comm events)."""
        runs_small = predictor.execute(2, args=[16, 6])
        runs_big = predictor.execute(2, args=[48, 6])
        plan = ScalePlan(
            env_cal={"n": 16}, env_target={"n": 48}, nit_target=6, cycle_len=2
        )
        scaled = predictor.traces_for(runs_small, "O0", scale=plan)
        direct = predictor.traces_for(runs_big, "O0")
        for ts, td in zip(scaled, direct):
            assert [e.kind for e in ts.events] == [e.kind for e in td.events]
            ns_s = ts.total_compute_ns
            ns_d = td.total_compute_ns
            assert ns_s == pytest.approx(ns_d, rel=0.10)
            assert ts.total_bytes_sent == td.total_bytes_sent


class TestPredictor:
    def test_instrumented_source_artifact(self, predictor):
        assert "papi_block_begin" in predictor.instrumented_source

    def test_traces_validate(self, predictor, cal_runs):
        traces = predictor.traces_for(cal_runs, "O3")
        validate_trace_set(traces)
        assert traces[0].meta["opt_level"] == "O3"

    def test_predict_end_to_end(self, predictor):
        platform = build_cluster(2)
        result = predictor.predict_end_to_end(
            2, platform, opt_level="O0", args=[32, 4], app="iterapp"
        )
        assert result.t_predicted > 0
        assert result.nprocs == 2
        assert result.platform == "grid5000"

    def test_opt_levels_order_in_prediction(self, predictor, cal_runs):
        platform = build_cluster(2)
        results = predict_many_levels(predictor, cal_runs, platform)
        assert results["O0"].t_predicted > results["O1"].t_predicted
        assert results["O1"].t_predicted > results["O3"].t_predicted

    def test_prediction_compute_scales_with_n(self, predictor):
        """More compute per rank → larger compute component (the total
        is latency-dominated at these tiny sizes)."""
        platform = build_cluster(2)
        r_small = predictor.predict_end_to_end(2, platform, "O0", args=[32, 4])
        r_large = predictor.predict_end_to_end(2, platform, "O0", args=[96, 4])
        assert max(r_large.replay.compute_time) > 2 * max(
            r_small.replay.compute_time
        )

    def test_missing_entry_rejected(self):
        with pytest.raises(ValueError, match="entry"):
            DPerfPredictor("int f() { return 0; }", entry="main")

    def test_scaled_prediction_runs(self, predictor, cal_runs):
        platform = build_cluster(2)
        plan = ScalePlan(
            env_cal={"n": 16}, env_target={"n": 128},
            nit_target=50, cycle_len=2,
        )
        traces = predictor.traces_for(cal_runs, "O2", scale=plan)
        validate_trace_set(traces)
        result = predictor.predict(traces, platform)
        assert result.t_predicted > 0
