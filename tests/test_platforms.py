"""Tests for the three paper platforms and the description-file dialect."""

import pytest

from repro.desim import Simulator
from repro.net import GBPS, MBPS, FluidNetwork
from repro.platforms import (
    PlatformSpec,
    build_cluster,
    build_daisy,
    build_lan,
    parse_platform_xml,
    write_platform_xml,
)


class TestCluster:
    def test_host_count_and_names(self):
        spec = build_cluster(8)
        assert len(spec.hosts) == 8
        assert spec.hosts[0].name == "node-0"

    def test_take_hosts(self):
        spec = build_cluster(4)
        assert len(spec.take_hosts(2)) == 2
        with pytest.raises(ValueError):
            spec.take_hosts(5)

    def test_route_crosses_backbone_between_leaves(self):
        spec = build_cluster(4)
        # node-0 (leaf a) → node-1 (leaf b) crosses the backbone.
        route = spec.topology.route(spec.hosts[0], spec.hosts[1])
        assert [l.name for l in route] == ["node-0--sw-a", "sw-a--sw-b", "sw-b--node-1"]
        # same-leaf route does not.
        route2 = spec.topology.route(spec.hosts[0], spec.hosts[2])
        assert [l.name for l in route2] == ["node-0--sw-a", "sw-a--node-2"]

    def test_paper_parameters(self):
        spec = build_cluster(2)
        nic = spec.topology.route(spec.hosts[0], spec.hosts[1])[0]
        assert nic.bandwidth == pytest.approx(1 * GBPS)
        assert nic.latency == pytest.approx(100e-6)
        backbone = spec.topology.route(spec.hosts[0], spec.hosts[1])[1]
        assert backbone.bandwidth == pytest.approx(10 * GBPS)

    def test_small_message_latency_budget(self):
        """Cross-leaf one-way latency is 3 hops × 100 µs."""
        spec = build_cluster(2)
        assert spec.topology.route_latency(
            spec.hosts[0], spec.hosts[1]
        ) == pytest.approx(300e-6)


class TestDaisy:
    def test_full_size_is_1024_nodes(self):
        spec = build_daisy()
        assert len(spec.hosts) == 1024
        assert spec.attrs["n_hosts"] == 1024

    def test_small_instance_shape(self):
        spec = build_daisy(
            petals=2, routers_per_petal=2, dslams_per_router=1,
            nodes_per_dslam=2, extra_nodes=1,
        )
        # 2 petals × 2 routers × 1 dslam × 2 nodes + 1 extra = 9
        assert len(spec.hosts) == 9

    def test_last_mile_bandwidth_in_range(self):
        spec = build_daisy(petals=2, routers_per_petal=2, dslams_per_router=1,
                           nodes_per_dslam=3, extra_nodes=0)
        for host in spec.hosts:
            link = spec.topology.route(host, spec.topology.node("core-0"))[0]
            assert 5 * MBPS <= link.bandwidth <= 10 * MBPS

    def test_last_mile_bandwidth_deterministic_per_seed(self):
        kw = dict(petals=1, routers_per_petal=1, dslams_per_router=1,
                  nodes_per_dslam=3, extra_nodes=0)
        s1 = build_daisy(seed=7, **kw)
        s2 = build_daisy(seed=7, **kw)
        s3 = build_daisy(seed=8, **kw)
        bw = lambda s: [
            s.topology.route(h, s.topology.node("dslam-0-0-0"))[0].bandwidth
            for h in s.hosts
        ]
        assert bw(s1) == bw(s2)
        assert bw(s1) != bw(s3)

    def test_same_dslam_peers_have_short_route(self):
        spec = build_daisy(petals=2, routers_per_petal=2, dslams_per_router=2,
                           nodes_per_dslam=2, extra_nodes=0)
        h0, h1 = spec.hosts[0], spec.hosts[1]  # same DSLAM
        route = spec.topology.route(h0, h1)
        assert len(route) == 2  # up to DSLAM, down to peer

    def test_cross_petal_route_traverses_core(self):
        spec = build_daisy(petals=2, routers_per_petal=1, dslams_per_router=1,
                           nodes_per_dslam=1, extra_nodes=0)
        h0, h1 = spec.hosts  # one per petal
        names = [l.name for l in spec.topology.route(h0, h1)]
        assert any(name.startswith("core-") for name in names)

    def test_transfer_between_dsl_peers_is_slow(self):
        """An xDSL exchange of 100 kB takes seconds, not milliseconds —
        the root cause of Stage-2A's poor scaling."""
        spec = build_daisy(petals=1, routers_per_petal=1, dslams_per_router=1,
                           nodes_per_dslam=2, extra_nodes=0)
        sim = Simulator()
        net = FluidNetwork(sim, spec.topology)
        done = net.send(spec.hosts[0], spec.hosts[1], 100e3)
        info = sim.run_until_triggered(done)
        assert info.duration > 0.08  # ≥ 100kB / 10Mbps


class TestLan:
    def test_host_count_default(self):
        spec = build_lan(16)
        assert len(spec.hosts) == 16

    def test_access_rate_paper_value(self):
        spec = build_lan(2)
        link = spec.topology.route(spec.hosts[0], spec.hosts[1])[0]
        assert link.bandwidth == pytest.approx(100 * MBPS)

    def test_backbone_is_shared_bottleneck(self):
        """Many cross-leaf flows contend on the 1 Gbps backbone."""
        spec = build_lan(40)
        sim = Simulator()
        net = FluidNetwork(sim, spec.topology)
        evens = [h for i, h in enumerate(spec.hosts) if i % 2 == 0]
        odds = [h for i, h in enumerate(spec.hosts) if i % 2 == 1]
        sigs = [net.send(a, b, 1e6) for a, b in zip(evens, odds)]
        sim.run()
        makespan = max(s.value.end for s in sigs)
        # 20 MB total over ≤1 Gbps backbone ⇒ ≥ 0.16 s even though each
        # access link alone would finish in 0.08 s.
        assert makespan >= 20e6 / (1 * GBPS)


class TestPlatformXml:
    def test_round_trip_cluster(self):
        spec = build_cluster(4)
        text = write_platform_xml(spec)
        spec2 = parse_platform_xml(text)
        assert spec2.name == spec.name
        assert [h.name for h in spec2.hosts] == [h.name for h in spec.hosts]
        # routes and latencies identical after round trip
        r1 = spec.topology.route_latency(spec.hosts[0], spec.hosts[1])
        r2 = spec2.topology.route_latency(spec2.hosts[0], spec2.hosts[1])
        assert r1 == pytest.approx(r2)

    def test_round_trip_preserves_bandwidths(self):
        spec = build_daisy(petals=1, routers_per_petal=1, dslams_per_router=1,
                           nodes_per_dslam=2, extra_nodes=0)
        spec2 = parse_platform_xml(write_platform_xml(spec))
        for h1, h2 in zip(spec.hosts, spec2.hosts):
            l1 = spec.topology.route(h1, spec.hosts[0])
            l2 = spec2.topology.route(h2, spec2.hosts[0])
            assert [l.bandwidth for l in l1] == pytest.approx(
                [l.bandwidth for l in l2]
            )

    def test_bad_root_rejected(self):
        with pytest.raises(ValueError, match="not a platform"):
            parse_platform_xml("<nonsense/>")

    def test_empty_platform_rejected(self):
        from repro.net import Topology

        with pytest.raises(ValueError, match="no hosts"):
            PlatformSpec("p", Topology(), [])
