"""Tests for the Fortran frontend (paper: dPerf handles C/C++/Fortran)."""

import pytest

from repro.dperf import DPerfPredictor, run_distributed, run_single
from repro.dperf.minic import FortranError, check, parse_fortran
from repro.platforms import build_cluster


def run_f(src, entry, args=()):
    program = parse_fortran(src)
    check(program)
    return run_single(program, entry, args)


class TestBasics:
    def test_function_returns_value(self):
        src = """
        function answer() result(r)
        integer :: r
        r = 41 + 1
        end
        """
        assert run_f(src, "answer").value == 42

    def test_do_loop_sum(self):
        src = """
        function total(n) result(s)
        integer :: n, i, s
        s = 0
        do i = 1, n
           s = s + i
        end do
        end
        """
        assert run_f(src, "total", [10]).value == 55

    def test_do_loop_with_step(self):
        src = """
        function evens(n) result(s)
        integer :: n, i, s
        s = 0
        do i = 0, n, 2
           s = s + i
        end do
        end
        """
        assert run_f(src, "evens", [10]).value == 30

    def test_if_then_else(self):
        src = """
        function sign_of(x) result(s)
        real*8 :: x
        integer :: s
        if (x .gt. 0.0d0) then
           s = 1
        else
           s = -1
        end if
        end
        """
        assert run_f(src, "sign_of", [2.5]).value == 1
        assert run_f(src, "sign_of", [-2.5]).value == -1

    def test_one_line_if_and_exit(self):
        src = """
        function first_over(n) result(i)
        integer :: n, i
        do i = 1, 100
           if (i * i > n) exit
        end do
        end
        """
        assert run_f(src, "first_over", [20]).value == 5

    def test_cycle(self):
        src = """
        function odds(n) result(s)
        integer :: n, i, s
        s = 0
        do i = 1, n
           if (mod(i, 2) == 0) cycle
           s = s + i
        end do
        end
        """
        assert run_f(src, "odds", [9]).value == 25

    def test_arrays_are_one_based(self):
        src = """
        function ends(n) result(r)
        integer :: n, i
        real*8 :: u(n), r
        do i = 1, n
           u(i) = dble(i)
        end do
        r = u(1) + u(n)
        end
        """
        assert run_f(src, "ends", [7]).value == 8.0

    def test_two_dimensional_array(self):
        src = """
        function corner(n) result(r)
        integer :: n, i, j
        real*8 :: m(n, n), r
        do i = 1, n
           do j = 1, n
              m(i, j) = dble(i * 10 + j)
           end do
        end do
        r = m(n, n)
        end
        """
        assert run_f(src, "corner", [3]).value == 33.0

    def test_power_operator_maps_to_pow(self):
        src = """
        function cube(x) result(r)
        real*8 :: x, r
        r = x ** 3
        end
        """
        assert run_f(src, "cube", [2.0]).value == pytest.approx(8.0)

    def test_intrinsics(self):
        src = """
        function clamp(x) result(r)
        real*8 :: x, r
        r = max(0.0d0, min(1.0d0, abs(x)))
        end
        """
        assert run_f(src, "clamp", [-0.25]).value == pytest.approx(0.25)

    def test_d_exponent_literals(self):
        src = """
        function tiny() result(r)
        real*8 :: r
        r = 1.5d-3
        end
        """
        assert run_f(src, "tiny").value == pytest.approx(1.5e-3)

    def test_continuation_and_comments(self):
        src = """
        ! a comment line
        function s3(a, b, c) result(r)
        real*8 :: a, b, c, r
        r = a + &
            b + c   ! trailing comment
        end
        """
        assert run_f(src, "s3", [1.0, 2.0, 3.0]).value == 6.0

    def test_subroutine_with_array_arg(self):
        src = """
        subroutine fill(u, n)
        integer :: n, i
        real*8 :: u(n)
        do i = 1, n
           u(i) = 5.0d0
        end do
        end

        function use_fill(n) result(r)
        integer :: n
        real*8 :: u(n), r
        call fill(u, n)
        r = u(n)
        end
        """
        assert run_f(src, "use_fill", [4]).value == 5.0

    def test_unsupported_statement_reported(self):
        with pytest.raises(FortranError, match="unsupported|expected"):
            parse_fortran("subroutine f()\n goto 10\n end")

    def test_case_insensitive(self):
        src = """
        FUNCTION Loud() RESULT(R)
        INTEGER :: R
        R = 3
        END
        """
        assert run_f(src, "loud").value == 3


class TestFortranThroughPipeline:
    HALO = """
    function relax(n, nit) result(res)
    integer :: n, nit, rank, size, it, i
    real*8 :: u(n + 2), res
    rank = p2psap_rank()
    size = p2psap_size()
    do i = 1, n + 2
       u(i) = dble(rank + i)
    end do
    res = 0.0d0
    do it = 1, nit
       call dperf_region_begin('iter')
       if (rank .gt. 0) then
          call p2psap_isend(rank - 1, u, 1)
       end if
       if (rank .lt. size - 1) then
          call p2psap_recv(rank + 1, u, 1)
       end if
       do i = 2, n + 1
          u(i) = 0.5d0 * (u(i - 1) + u(i + 1))
       end do
       call dperf_region_end('iter')
    end do
    res = u(2)
    end
    """

    def test_multi_rank_execution(self):
        program = parse_fortran(self.HALO)
        check(program)
        runs = run_distributed(program, "relax", 3, args=[16, 4])
        assert len(runs) == 3
        assert all(isinstance(r.value, float) for r in runs)

    def test_comm_calls_discovered(self):
        from repro.dperf.minic import find_comm_calls

        sites = find_comm_calls(parse_fortran(self.HALO))
        apis = {s.api for s in sites}
        assert "p2psap_isend" in apis and "p2psap_recv" in apis

    def test_full_prediction_from_fortran(self):
        predictor = DPerfPredictor(self.HALO, entry="relax",
                                   language="fortran")
        result = predictor.predict_end_to_end(
            2, build_cluster(2), opt_level="O2", args=[32, 6], app="frelax"
        )
        assert result.t_predicted > 0
        assert "papi_block_begin" in predictor.instrumented_source

    def test_unknown_language_rejected(self):
        with pytest.raises(ValueError, match="language"):
            DPerfPredictor("x", entry="f", language="cobol")
