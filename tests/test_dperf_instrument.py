"""Tests for AST instrumentation, cost model, and GCC level model."""

import pytest

from repro.dperf import (
    REFERENCE_MACHINE,
    Census,
    GccModel,
    MachineModel,
    OPT_LEVELS,
    UnknownOptLevel,
    instrument,
    parse_level,
    run_single,
)
from repro.dperf.minic import cast as A
from repro.dperf.minic import check, parse, unparse


SRC = """
void kernel(double u[], double v[], int n) {
    double c = 0.25;
    for (int i = 1; i < n - 1; i++) {
        v[i] = c * (u[i - 1] + u[i + 1]) + u[i];
    }
    if (n > 2) {
        v[0] = 0.0;
    }
}
"""


class TestInstrument:
    def test_papi_calls_inserted(self):
        prog, table = instrument(parse(SRC))
        text = unparse(prog)
        assert "papi_block_begin(" in text
        assert "papi_block_end(" in text
        assert text.count("papi_block_begin") == text.count("papi_block_end")

    def test_instrumented_program_still_checks(self):
        prog, _table = instrument(parse(SRC))
        check(prog)

    def test_original_ast_untouched(self):
        original = parse(SRC)
        before = unparse(original)
        instrument(original)
        assert unparse(original) == before

    def test_block_table_has_loop_body_block(self):
        _prog, table = instrument(parse(SRC))
        body_blocks = [b for b in table if b.loop_depth == 1 and not b.is_loop_control]
        assert len(body_blocks) >= 1

    def test_vectorizable_flag(self):
        _prog, table = instrument(parse(SRC))
        body = [b for b in table if b.loop_depth == 1 and not b.is_loop_control]
        assert any(b.vectorizable for b in body)
        top = [b for b in table if b.loop_depth == 0 and not b.is_loop_control]
        assert all(not b.vectorizable for b in top)

    def test_user_call_blocks_not_vectorizable(self):
        src = """
        double f(double x) { return x; }
        void kernel(double u[], int n) {
            for (int i = 0; i < n; i++) { u[i] = f(u[i]); }
        }
        """
        _prog, table = instrument(parse(src))
        body = [b for b in table if b.loop_depth == 1 and not b.is_loop_control]
        assert all(not b.vectorizable for b in body)

    def test_comm_calls_outside_blocks(self):
        src = """
        void f(double u[], int n) {
            u[0] = 1.0;
            p2psap_send(1, u, n);
            u[1] = 2.0;
        }
        """
        prog, _table = instrument(parse(src))
        text = unparse(prog)
        # the send must not be bracketed: begin ... end appears before it
        send_pos = text.index("p2psap_send")
        last_end_before = text.rfind("papi_block_end", 0, send_pos)
        first_begin_after = text.find("papi_block_begin", send_pos)
        assert last_end_before != -1
        assert first_begin_after != -1

    def test_enclosing_loops_exclude_comm_loops(self):
        src = """
        void f(double u[], int n, int nit) {
            for (int it = 0; it < nit; it++) {
                p2psap_send(1, u, n);
                for (int i = 0; i < n; i++) { u[i] = 0.0; }
            }
        }
        """
        _prog, table = instrument(parse(src))
        inner = [b for b in table
                 if b.loop_depth == 2 and not b.is_loop_control]
        assert len(inner) == 1
        # only the inner (comm-free) loop counts for scale-up
        assert len(inner[0].enclosing_loops) == 1

    def test_loop_control_blocks_registered(self):
        _prog, table = instrument(parse(SRC))
        controls = [b for b in table if b.is_loop_control]
        assert len(controls) == 1

    def test_statement_granularity_makes_more_blocks(self):
        src = """
        void f(double u[], int n) {
            double a = 1.0;
            double b = 2.0;
            double c = a + b;
            u[0] = c;
        }
        """
        _p1, t_block = instrument(parse(src), granularity="block")
        _p2, t_stmt = instrument(parse(src), granularity="statement")
        assert t_block.n_blocks == 1   # one 4-statement run
        assert t_stmt.n_blocks == 4    # one block per statement

    def test_unknown_granularity_rejected(self):
        with pytest.raises(ValueError, match="granularity"):
            instrument(parse(SRC), granularity="molecule")

    def test_instrumentation_overhead_model(self):
        from repro.dperf import (
            instrumentation_overhead_ns,
            instrumentation_slowdown,
        )

        counts = {0: 10, 1: 5}
        assert instrumentation_overhead_ns(counts, papi_read_ns=100) == 3000
        assert instrumentation_slowdown(counts, 30000, papi_read_ns=100) \
            == pytest.approx(0.1)
        with pytest.raises(ValueError):
            instrumentation_slowdown(counts, 0.0)

    def test_instrumented_execution_attributes_ops(self):
        prog, table = instrument(parse(SRC))
        full = unparse(prog) + """
        double main() {
            double u[64]; double v[64];
            for (int i = 0; i < 64; i++) u[i] = (double)i;
            kernel(u, v, 64);
            return v[5];
        }
        """
        # reparse the combined instrumented + driver source
        res = run_single(parse(full), "main", block_table=table)
        assert res.value == pytest.approx(0.25 * (4 + 6) + 5)
        assert any(bid >= 0 for bid in res.block_exec_counts)


class TestCostModel:
    def test_census_ns_positive(self):
        census = Census()
        census.add("fp_add", 100)
        census.add("mem_load", 50)
        ns = REFERENCE_MACHINE.census_ns(census)
        assert ns > 0

    def test_ns_per_cycle(self):
        assert REFERENCE_MACHINE.ns_per_cycle == pytest.approx(1 / 3)

    def test_builtin_cost(self):
        census = Census()
        census.add("builtin:sqrt", 10)
        ns = REFERENCE_MACHINE.census_ns(census)
        assert ns == pytest.approx(10 * 30 / 3)

    def test_unknown_category_rejected(self):
        census = Census()
        census.add("teleport", 1)
        with pytest.raises(KeyError):
            REFERENCE_MACHINE.census_ns(census)

    def test_factors_scale_down(self):
        census = Census()
        census.add("scalar_load", 1000)
        base = REFERENCE_MACHINE.census_ns(census)
        opt = REFERENCE_MACHINE.census_ns(census, {"scalar_load": 0.1})
        assert opt == pytest.approx(base * 0.1)

    def test_custom_machine_clock(self):
        m = MachineModel(clock_hz=1e9, cycle_costs={"int_op": 1.0})
        census = Census()
        census.add("int_op", 3)
        assert m.census_ns(census) == pytest.approx(3.0)


class TestGccModel:
    def test_all_levels_construct(self):
        for level in OPT_LEVELS:
            GccModel(level)

    def test_unknown_level(self):
        with pytest.raises(UnknownOptLevel):
            GccModel("O9")

    def test_parse_level_spellings(self):
        assert parse_level(0) == "O0"
        assert parse_level("3") == "O3"
        assert parse_level("Os") == "Os"
        assert parse_level("s") == "Os"
        with pytest.raises(UnknownOptLevel):
            parse_level("fast")

    def test_o0_is_identity(self):
        f = GccModel("O0").factors()
        assert all(v == 1.0 for v in f.values())

    def test_levels_ordered_for_stencil_census(self):
        """On a stencil-like census the level family is ordered
        O0 > O1 > Os > O2 > O3(vectorized) — O0 far above a tight
        O1/O2/Os cluster, O3 fastest (the Fig. 9 shape)."""
        census = Census()
        census.update({
            "scalar_load": 8, "scalar_store": 1, "mem_load": 5, "mem_store": 1,
            "addr": 12, "fp_add": 4, "fp_mul": 2, "int_op": 3, "branch": 1,
        })

        def ns(level, vec):
            return REFERENCE_MACHINE.census_ns(
                census, GccModel(level).factors(vectorizable=vec)
            )

        t = {lvl: ns(lvl, vec=True) for lvl in OPT_LEVELS}
        cluster = [t["O1"], t["O2"], t["Os"]]
        # O0 separated from the cluster by at least 2×
        assert t["O0"] > 2 * max(cluster)
        # O3 (vectorized) is the fastest of all levels
        assert t["O3"] < min(cluster)
        # the O1/O2/Os cluster is tight (within 25% of each other)
        assert max(cluster) / min(cluster) < 1.25

    def test_o3_vectorization_needs_flag(self):
        census = Census()
        census.update({"fp_add": 100, "mem_load": 100})
        vec = REFERENCE_MACHINE.census_ns(census, GccModel("O3").factors(True))
        novec = REFERENCE_MACHINE.census_ns(census, GccModel("O3").factors(False))
        assert vec < novec

    def test_o0_to_o3_overall_ratio_plausible(self):
        """Whole-kernel O0/O3 ratio lands in the 2.5×–4.5× band typical
        for stencils (drives the Fig. 9 spread)."""
        census = Census()
        census.update({
            "scalar_load": 8, "scalar_store": 1, "mem_load": 5, "mem_store": 1,
            "addr": 12, "fp_add": 4, "fp_mul": 2, "int_op": 3, "branch": 1,
        })
        t0 = REFERENCE_MACHINE.census_ns(census, GccModel("O0").factors(True))
        t3 = REFERENCE_MACHINE.census_ns(census, GccModel("O3").factors(True))
        assert 2.5 < t0 / t3 < 4.5
