"""The work-stealing fleet and the consolidated results store.

Contracts pinned here:

- **claims are exclusive** — the atomic-rename steal has exactly one
  winner per point;
- **store appends are deduplicated and torn-tolerant** — one record
  per (label, spec hash), readers skip a killed writer's trailing
  line, ``backfill`` absorbs only complete non-shard manifests;
- **byte-identity** — a fleet run's manifest is byte-for-byte the
  manifest a serial unsharded sweep writes;
- **fault paths** — a worker SIGKILLed mid-point is detected and its
  point reassigned *exactly once* with no duplicate store/cache
  writes; a point that keeps killing workers is quarantined as poison
  after its retry budget, with a monotone backoff trail, while every
  other point still completes.
"""

import json
import os
import signal
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.fleet import (
    FleetDirs,
    FleetDispatcher,
    FleetWorker,
    ResultStore,
    backoff_delay,
    fleet_stats,
    format_stats,
    requeue_task,
    worker_stats,
)
from repro.fleet.cli import main as fleet_main
from repro.fleet.telemetry import WorkerStat, flag_stragglers
from repro.scenarios import SCENARIOS, expand_grid, run_scenario
from repro.scenarios.cli import main as scenarios_main
from repro.scenarios.runner import ResultCache, clear_memo
from repro.scenarios.spec import PlatformPlan, ScenarioSpec

#: The cheap all-deploy grid of test_sharding.py: 12 points, each only
#: builds and settles a small overlay (~tens of ms).
DEPLOY_ARGS = [
    "--set", "platform.n_hosts=32", "--set", "n_peers=4,6,8",
    "--set", "n_zones=1,2", "--set", "seed=2011,2013",
]
DEPLOY_GRID = {
    "platform.n_hosts": (32,), "n_peers": (4, 6, 8),
    "n_zones": (1, 2), "seed": (2011, 2013),
}
SCENARIO = "large-overlay-512"


def _specs():
    return expand_grid(SCENARIOS[SCENARIO].base, DEPLOY_GRID)


def _spawn_env(**extra):
    """Worker-subprocess env with the repo's src on PYTHONPATH, so the
    fleet tests pass regardless of how pytest itself was launched."""
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_FLEET_FAULT", None)
    env.update(extra)
    return env


def _serial_manifest(cache: Path) -> Path:
    assert scenarios_main(
        ["sweep", SCENARIO, "--serial", "--label", "g",
         "--cache-dir", str(cache)] + DEPLOY_ARGS
    ) == 0
    return cache / "sweeps" / "g.json"


def _probe_result(seed=1):
    spec = ScenarioSpec(
        name="store-probe", kind="deploy", seed=seed,
        platform=PlatformPlan(kind="cluster", n_hosts=8), n_peers=4,
    )
    return spec, run_scenario(spec)


def _append_line(store, record):
    """A concurrent writer's raw append: lands a physical line past
    this process's dedup (the two-process refresh→write window)."""
    with open(store.index_path, "a") as fh:
        fh.write(json.dumps(record, sort_keys=True,
                            separators=(",", ":")) + "\n")


# -- the consolidated store ---------------------------------------------------

class TestResultStore:
    def test_record_dedups_on_label_and_hash(self, tmp_path):
        store = ResultStore(tmp_path)
        spec, result = _probe_result()
        assert store.record(spec, result, "a", SCENARIO) is True
        assert store.record(spec, result, "a", SCENARIO) is False
        # same hash under a different label is a distinct record
        assert store.record(spec, result, "b", SCENARIO) is True
        assert len(store) == 2
        assert store.labels() == {"a": 1, "b": 1}
        assert store.skipped == 1

    def test_dedup_survives_reopening(self, tmp_path):
        spec, result = _probe_result()
        ResultStore(tmp_path).record(spec, result, "a", SCENARIO)
        again = ResultStore(tmp_path)  # _seen loaded from disk
        assert again.record(spec, result, "a", SCENARIO) is False
        assert len(again) == 1

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        store = ResultStore(tmp_path)
        spec, result = _probe_result()
        store.record(spec, result, "a", SCENARIO)
        with open(store.index_path, "a") as fh:
            fh.write('{"label": "a", "spec_hash": "beef", "trunc')
        entries = list(ResultStore(tmp_path).entries())
        assert len(entries) == 1
        assert entries[0]["label"] == "a"

    def test_sweep_points_dedups_per_hash_newest_wins(self, tmp_path):
        spec, result = _probe_result()
        old = dict(name=spec.name, spec_hash=result.spec_hash,
                   label="a", scenario=SCENARIO,
                   result=dict(result.to_dict(), t=1.0))
        new = dict(old, result=dict(result.to_dict(), t=2.0))
        # two appends of the same (label, hash) — the double-index a
        # reassignment race could produce; the second lands as a raw
        # duplicate line, past any single instance's dedup
        store = ResultStore(tmp_path)
        store.record_raw(old)
        _append_line(store, new)
        points = ResultStore(tmp_path).sweep_points("a")
        assert len(points) == 1
        assert points[0]["result"]["t"] == 2.0

    def test_len_and_labels_dedup_duplicate_lines(self, tmp_path):
        """Accounting must match what readers actually return: a
        duplicate physical line from a concurrent writer counts
        once in ``len``/``labels``, like it reads once."""
        spec, result = _probe_result()
        store = ResultStore(tmp_path)
        store.record(spec, result, "a", SCENARIO)
        _append_line(store, {
            "spec_hash": result.spec_hash, "name": spec.name,
            "label": "a", "scenario": SCENARIO,
            "result": result.to_dict(),
        })
        assert store.index_path.read_text().count('"label":"a"') == 2
        fresh = ResultStore(tmp_path)
        assert len(fresh) == 1

    def test_superseded_fraction_counts_shadowed_records(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.superseded_fraction() == 0.0  # empty: nothing to do
        spec, result = _probe_result()
        store.record(spec, result, "a", SCENARIO)
        assert store.superseded_fraction() == 0.0  # all live
        record = {
            "spec_hash": result.spec_hash, "name": spec.name,
            "label": "a", "scenario": SCENARIO,
            "result": result.to_dict(),
        }
        _append_line(store, record)
        _append_line(store, record)
        # 3 physical records, 1 live key: two thirds are history
        fresh = ResultStore(tmp_path)
        assert fresh.superseded_fraction() == pytest.approx(2 / 3)
        fresh.compact()
        assert ResultStore(tmp_path).superseded_fraction() == 0.0
        assert fresh.labels() == {"a": 1}

    def test_get_result_returns_newest(self, tmp_path):
        spec, result = _probe_result()
        store = ResultStore(tmp_path)
        store.record(spec, result, "a", SCENARIO)
        assert store.get_result(result.spec_hash).canonical_json() \
            == result.canonical_json()
        assert store.get_result("nope") is None

    def test_persisted_sidecar_is_adopted_not_rebuilt(self, tmp_path):
        pairs = [_probe_result(seed=s) for s in (1, 2, 3)]
        store = ResultStore(tmp_path)
        for spec, result in pairs:
            store.record(spec, result, "a", SCENARIO)
        store.compact()  # persists a snapshot covering every record
        assert store.offsets_path.exists()
        fresh = ResultStore(tmp_path)
        for _spec, result in pairs:
            assert fresh.get_result(result.spec_hash).canonical_json() \
                == result.canonical_json()
        # the lookups went through the adopted sidecar: no full scan
        assert fresh.sidecar_rebuilds == 0

    def test_torn_sidecar_is_rebuilt_from_the_index(self, tmp_path):
        spec, result = _probe_result()
        store = ResultStore(tmp_path)
        store.record(spec, result, "a", SCENARIO)
        store.offsets_path.write_text('{"generation": 0, "cov')
        fresh = ResultStore(tmp_path)
        assert fresh.get_result(result.spec_hash).canonical_json() \
            == result.canonical_json()
        assert fresh.sidecar_rebuilds == 1
        # the rebuild repaired the on-disk sidecar too
        payload = json.loads(store.offsets_path.read_text())
        assert payload["offsets"][result.spec_hash] == 0
        assert payload["covers"] == store.index_path.stat().st_size

    def test_lying_offsets_caught_by_hash_check(self, tmp_path):
        """A sidecar with the right generation but wrong offsets (the
        compaction-swap window) is caught by the read-back hash
        mismatch and rebuilt — the sidecar can be stale, never
        wrong."""
        (s1, r1), (s2, r2) = _probe_result(seed=1), _probe_result(seed=2)
        store = ResultStore(tmp_path)
        store.record(s1, r1, "a", SCENARIO)
        store.record(s2, r2, "a", SCENARIO)
        store.compact()
        payload = json.loads(store.offsets_path.read_text())
        payload["offsets"][r1.spec_hash] = \
            payload["offsets"][r2.spec_hash]
        store.offsets_path.write_text(json.dumps(payload))
        fresh = ResultStore(tmp_path)
        assert fresh.get_result(r1.spec_hash).canonical_json() \
            == r1.canonical_json()
        assert fresh.sidecar_rebuilds == 1

    def test_compaction_invalidates_warm_readers(self, tmp_path):
        """A reader holding pre-compaction offsets sees the generation
        bump on its next refresh and rebuilds instead of seeking into
        the rewritten file."""
        spec, result = _probe_result()
        old = {"spec_hash": result.spec_hash, "name": spec.name,
               "label": "a", "scenario": SCENARIO,
               "result": dict(result.to_dict(), t=1.0)}
        writer = ResultStore(tmp_path)
        writer.record_raw(old)
        reader = ResultStore(tmp_path)
        assert reader.get_result(result.spec_hash).t == 1.0
        # a concurrent writer lands a newer duplicate, then compacts
        _append_line(writer, dict(old, result=dict(result.to_dict(),
                                                   t=2.0)))
        writer.compact()
        assert reader.get_result(result.spec_hash).t == 2.0
        assert reader.sidecar_rebuilds >= 1

    def test_compaction_preserves_every_read(self, tmp_path):
        """Compacted and uncompacted stores answer identically:
        ``sweep_points`` (order included), ``labels``, ``len``, and
        per-hash ``get_result`` — pinned via canonical JSON."""
        pairs = [_probe_result(seed=s) for s in (1, 2, 3)]
        store = ResultStore(tmp_path)
        for spec, result in pairs:
            store.record(spec, result, "a", SCENARIO)
        store.record(pairs[0][0], pairs[0][1], "b", SCENARIO)
        # a newer duplicate for one key: compaction must keep it
        s1, r1 = pairs[1]
        _append_line(store, {
            "spec_hash": r1.spec_hash, "name": s1.name, "label": "a",
            "scenario": SCENARIO,
            "result": dict(r1.to_dict(), t=99.0),
        })

        def snapshot(view):
            return (
                json.dumps(view.sweep_points("a"), sort_keys=True),
                json.dumps(view.sweep_points("b"), sort_keys=True),
                view.labels(), len(view),
                {r.spec_hash: view.get_result(r.spec_hash)
                               .canonical_json()
                 for _s, r in pairs},
            )

        before = snapshot(ResultStore(tmp_path))
        stats = store.compact()
        assert stats["records_before"] == 5
        assert stats["records_after"] == 4 and stats["dropped"] == 1
        assert stats["generation"] == 1
        assert snapshot(ResultStore(tmp_path)) == before
        # compaction is idempotent (apart from the generation bump)
        again = store.compact()
        assert again["dropped"] == 0 and again["generation"] == 2
        assert snapshot(ResultStore(tmp_path)) == before

    def test_backfill_absorbs_only_complete_sweeps(self, tmp_path):
        sweeps = tmp_path / "sweeps"
        sweeps.mkdir()
        spec, result = _probe_result()
        point = {"name": spec.name, "spec_hash": result.spec_hash,
                 "result": result.to_dict()}
        (sweeps / "good.json").write_text(json.dumps(
            {"label": "good", "scenario": SCENARIO, "points": [point]}
        ))
        (sweeps / "killed.json").write_text(json.dumps(
            {"label": "killed", "scenario": SCENARIO,
             "points": [point], "partial": True}
        ))
        (sweeps / "g.shard0of2.json").write_text(json.dumps(
            {"label": "g", "scenario": SCENARIO, "points": [point],
             "shard": {"index": 0, "count": 2, "n_points": 2}}
        ))
        (sweeps / "junk.json").write_text("{not json")
        store = ResultStore(tmp_path)
        stats = store.backfill(sweeps)
        assert stats == {"manifests": 1, "absorbed": 1,
                         "already_indexed": 0, "points": 1,
                         "skipped_manifests": 3}
        assert store.labels() == {"good": 1}
        # idempotent: a second backfill appends nothing — and reports
        # the manifest as already indexed, not as fresh work
        again = store.backfill(sweeps)
        assert again["points"] == 0 and again["absorbed"] == 0
        assert again["already_indexed"] == 1

    def test_backfill_missing_dir_is_noop(self, tmp_path):
        stats = ResultStore(tmp_path).backfill(tmp_path / "nope")
        assert stats["manifests"] == 0


# -- the steal protocol -------------------------------------------------------

class TestProtocol:
    def test_claim_has_exactly_one_winner(self, tmp_path):
        dirs = FleetDirs(tmp_path / "f").create()
        dirs.enqueue({"index": 0, "name": "p", "spec_hash": "h",
                      "attempt": 1})
        first = dirs.claim(0, "w0")
        second = dirs.claim(0, "w1")
        assert first is not None
        assert second is None
        claims = dirs.active_claims()
        assert [c["worker"] for c in claims] == ["w0"]

    def test_claim_returns_the_payload_it_renamed(self, tmp_path,
                                                  monkeypatch):
        """The requeue/claim interleave: a bumped payload re-enqueued
        in the window just before the claim's rename must be what the
        winner receives.  Read-then-rename handed back the *stale*
        payload — attempt counter and backoff trail reset — which
        could defeat the retry budget."""
        dirs = FleetDirs(tmp_path / "f").create()
        v1 = {"index": 0, "name": "p", "spec_hash": "h", "attempt": 1}
        dirs.enqueue(v1)
        real_rename = os.rename

        def racing_rename(src, dst):
            # the requeue lands its bumped payload first (enqueue is
            # os.replace-based, so no recursion), then the claim's
            # rename moves that fresh file
            dirs.enqueue(dict(v1, attempt=2, not_before=123.0,
                              attempts=[{"attempt": 2}]))
            return real_rename(src, dst)

        monkeypatch.setattr(os, "rename", racing_rename)
        claimed = dirs.claim(0, "w0")
        assert claimed is not None
        assert claimed["attempt"] == 2
        assert claimed["not_before"] == 123.0

    def test_worker_hands_back_a_raced_backoff(self, tmp_path,
                                               monkeypatch):
        """A claim that comes back carrying a future ``not_before``
        (the requeue raced us) is re-enqueued verbatim and the claim
        released — the worker must not compute through a backoff."""
        cache = tmp_path / "cache"
        dirs = FleetDirs(cache / "fleet" / "g").create()
        dirs.write_grid({"label": "g", "scenario": SCENARIO,
                         "n_points": 1})
        worker = FleetWorker(dirs.root, cache_dir=cache,
                             worker_id="w0")
        dirs.enqueue({"index": 0, "name": "p", "spec_hash": "h",
                      "attempt": 1})
        future = time.time() + 60.0
        real_claim = FleetDirs.claim

        def racing_claim(self, index, worker_id):
            claimed = real_claim(self, index, worker_id)
            return None if claimed is None \
                else dict(claimed, attempt=2, not_before=future)

        monkeypatch.setattr(FleetDirs, "claim", racing_claim)
        assert worker._try_claim() is None  # noqa: SLF001
        (task,) = worker.dirs.queued_tasks()
        assert task["attempt"] == 2 and task["not_before"] == future
        assert worker.dirs.active_claims() == []

    def test_backoff_is_monotone_exponential(self):
        delays = [backoff_delay(a, 0.5) for a in range(1, 6)]
        assert delays == [0.5, 1.0, 2.0, 4.0, 8.0]

    def test_requeue_exhausts_into_poison_with_history(self, tmp_path):
        dirs = FleetDirs(tmp_path / "f").create()
        task = {"index": 3, "name": "p", "spec_hash": "h", "attempt": 1}
        assert requeue_task(dirs, task, max_retries=2,
                            backoff_base=0.01, reason="first") is True
        requeued = dirs.queued_tasks()[0]
        assert requeued["attempt"] == 2
        assert requeued["not_before"] > 0
        assert requeue_task(dirs, requeued, max_retries=2,
                            backoff_base=0.01, reason="second") is False
        assert dirs.queued_tasks() == []
        poison = dirs.poison_records()[3]
        history = poison["attempts"]
        assert [h["attempt"] for h in history] == [2, 3]
        assert "second" in poison["reason"]
        # monotone backoff: each retry waits strictly longer
        gaps = [h["not_before"] - h["at"] for h in history]
        assert gaps == sorted(gaps) and gaps[1] > gaps[0]

    def test_heartbeats_roundtrip(self, tmp_path):
        dirs = FleetDirs(tmp_path / "f").create()
        dirs.beat("w0", 7, points_done=3)
        beat = dirs.heartbeats()["w0"]
        assert beat["point"] == 7 and beat["points_done"] == 3
        assert beat["pid"] == os.getpid()

    def test_resolved_counter_tracks_and_never_regresses(self, tmp_path):
        dirs = FleetDirs(tmp_path / "f").create()
        from repro.fleet import ResolvedCounter

        counter = ResolvedCounter(dirs, recheck_interval=0.0)
        assert counter.count() == 0
        dirs.mark_done({"index": 0, "name": "p", "spec_hash": "h"})
        dirs.mark_poison({"index": 1, "name": "q", "spec_hash": "i"},
                         reason="bad")
        assert counter.count() == 2
        # resolved files never disappear mid-fleet, so a (simulated)
        # racy undercount must not walk the counter backwards
        os.unlink(dirs.done / dirs.task_name(0))
        assert counter.count() == 2

    def test_resolved_counter_caches_between_mtime_changes(
            self, tmp_path):
        dirs = FleetDirs(tmp_path / "f").create()
        from repro.fleet import ResolvedCounter

        counter = ResolvedCounter(dirs, recheck_interval=3600.0)
        dirs.mark_done({"index": 0, "name": "p", "spec_hash": "h"})
        assert counter.count() == 1
        calls = {"n": 0}
        real = dirs.done_indices

        def counted():
            calls["n"] += 1
            return real()

        dirs.done_indices = counted
        # unchanged directories + a fresh check: the cache answers
        assert counter.count() == 1
        assert calls["n"] == 0
        dirs.mark_done({"index": 1, "name": "q", "spec_hash": "i"})
        # force the mtime tick (filesystem granularity can be coarse)
        stat = os.stat(dirs.done)
        os.utime(dirs.done, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1))
        assert counter.count() == 2
        assert calls["n"] == 1


# -- straggler telemetry ------------------------------------------------------

class TestTelemetry:
    def test_rate_rule_flags_slow_worker(self):
        fast = [WorkerStat(worker=f"w{i}", points_done=10,
                           points_per_min=10.0) for i in range(2)]
        slow = WorkerStat(worker="slow", points_done=1,
                          points_per_min=2.0)
        workers = fast + [slow]
        flag_stragglers(workers)
        assert slow.straggler
        assert "median" in slow.reasons[0]
        assert not any(w.straggler for w in fast)

    def test_rate_rule_needs_two_productive_workers(self):
        # one productive worker has no fleet to be slower than; an
        # idle worker is not a straggler, it just hasn't stolen yet
        only = WorkerStat(worker="w0", points_done=1,
                          points_per_min=0.01)
        idle = WorkerStat(worker="w1", points_done=0,
                          points_per_min=0.0)
        workers = [only, idle]
        flag_stragglers(workers)
        assert not any(w.straggler for w in workers)

    def test_stall_rule_flags_wedged_point(self):
        stuck = WorkerStat(worker="w0", points_done=5,
                           points_per_min=5.0, mean_latency=1.0,
                           point=7, point_age=10.0)
        flag_stragglers([stuck])
        assert stuck.straggler
        assert "in flight" in stuck.reasons[0]

    def test_worker_stats_reads_heartbeat_telemetry(self, tmp_path):
        dirs = FleetDirs(tmp_path / "f").create()
        dirs.beat("w0", 3, points_done=4, telemetry={
            "points_per_min": 8.0, "mean_latency": 0.5,
            "last_latency": 0.4, "point_age": 0.2, "uptime": 30.0,
        })
        (stat,) = worker_stats(dirs, now=time.time() + 1.0)
        assert stat.worker == "w0" and stat.points_done == 4
        assert stat.points_per_min == 8.0
        assert stat.point == 3 and stat.point_age == 0.2
        assert stat.beat_age >= 1.0

    def test_fleet_stats_snapshot_and_format(self, tmp_path):
        dirs = FleetDirs(tmp_path / "f").create()
        dirs.write_grid({"label": "g", "scenario": SCENARIO,
                         "n_points": 4})
        dirs.enqueue({"index": 2, "name": "p", "spec_hash": "h",
                      "attempt": 1})
        dirs.mark_done({"index": 0, "name": "p", "spec_hash": "h0"})
        dirs.beat("fast", None, points_done=2,
                  telemetry={"points_per_min": 10.0})
        dirs.beat("slow", None, points_done=1,
                  telemetry={"points_per_min": 1.0})
        stats = fleet_stats(dirs)
        assert stats.label == "g" and stats.n_points == 4
        assert stats.done == 1 and stats.queued == 1
        assert stats.active == 0
        assert [w.worker for w in stats.stragglers] == ["slow"]
        text = format_stats(stats)
        assert "1/4 done" in text
        assert "fast" in text and "slow" in text
        assert "STRAGGLER" in text


# -- the dispatcher -----------------------------------------------------------

class TestFleetRuns:
    def test_fleet_manifest_byte_identical_to_serial_sweep(self, tmp_path):
        serial = _serial_manifest(tmp_path / "serial")
        clear_memo()  # the fleet must earn its points, not inherit them
        outcome = FleetDispatcher(
            _specs(), label="g", scenario=SCENARIO,
            cache_dir=tmp_path / "fleet", workers=2,
            heartbeat_interval=0.1, poll_interval=0.05,
            wall_timeout=120.0, spawn_env=_spawn_env(),
        ).run()
        assert outcome.complete
        assert outcome.computed == 12 and outcome.cached == 0
        # at least two workers actually stole work
        assert len(outcome.worker_points) >= 2
        assert outcome.manifest_path.read_bytes() == serial.read_bytes()
        # every computed point was indexed exactly once
        assert len(ResultStore(tmp_path / "fleet")) == 12

    def test_fleet_resolves_from_shared_cache_without_workers(
            self, tmp_path):
        cache = tmp_path / "shared"
        serial = _serial_manifest(cache)
        # same cache dir: every point is already answered on disk, so
        # zero workers is enough and nothing recomputes
        outcome = FleetDispatcher(
            _specs(), label="g", scenario=SCENARIO, cache_dir=cache,
            workers=0, wall_timeout=60.0,
        ).run()
        assert outcome.complete
        assert outcome.cached == 12 and outcome.computed == 0
        assert outcome.manifest_path.read_bytes() == serial.read_bytes()

    def test_rerun_resumes_from_done_records(self, tmp_path):
        cache = tmp_path / "fleet"
        specs = _specs()
        clear_memo()
        first = FleetDispatcher(
            specs, label="g", scenario=SCENARIO, cache_dir=cache,
            workers=2, heartbeat_interval=0.1, poll_interval=0.05,
            wall_timeout=120.0, spawn_env=_spawn_env(),
        ).run()
        assert first.complete
        again = FleetDispatcher(
            specs, label="g", scenario=SCENARIO, cache_dir=cache,
            workers=0, wall_timeout=60.0,
        ).run()
        assert again.complete and again.computed == 0
        assert again.manifest_path.read_bytes() \
            == first.manifest_path.read_bytes()
        # resume did not double-index the store
        assert len(ResultStore(cache)) == 12

    def test_finalize_compacts_a_history_heavy_store(self, tmp_path):
        """Once superseded records cross the threshold, finalize
        compacts — and a threshold of 1.0 never does."""
        cache = tmp_path / "shared"
        _serial_manifest(cache)
        specs = _specs()
        first = FleetDispatcher(
            specs, label="g", scenario=SCENARIO, cache_dir=cache,
            workers=0, wall_timeout=60.0,
        ).run()
        assert first.complete and first.compaction is None  # all live
        # shadow every record once (the double-index a reassignment
        # race leaves behind): half the index is now history
        store = ResultStore(cache)
        for record in list(store.entries()):
            _append_line(store, record)
        polluted = ResultStore(cache)
        assert polluted.superseded_fraction() == pytest.approx(0.5)
        # threshold 1.0: auto-compaction is off, history survives
        off = FleetDispatcher(
            specs, label="g", scenario=SCENARIO, cache_dir=cache,
            workers=0, wall_timeout=60.0, compact_threshold=1.0,
        ).run()
        assert off.complete and off.compaction is None
        assert ResultStore(cache).superseded_fraction() \
            == pytest.approx(0.5)
        # a threshold under the fraction: finalize rewrites the index
        outcome = FleetDispatcher(
            specs, label="g", scenario=SCENARIO, cache_dir=cache,
            workers=0, wall_timeout=60.0, compact_threshold=0.4,
        ).run()
        assert outcome.complete
        assert outcome.compaction is not None
        assert outcome.compaction["records_before"] == 24
        assert outcome.compaction["records_after"] == 12
        assert outcome.compaction["dropped"] == 12
        compacted = ResultStore(cache)
        assert compacted.superseded_fraction() == 0.0
        assert len(compacted.sweep_points("g")) == 12

    def test_compact_threshold_validated(self, tmp_path):
        from repro.fleet.dispatcher import FleetError

        with pytest.raises(FleetError, match="compact_threshold"):
            FleetDispatcher(
                _specs(), label="g", scenario=SCENARIO,
                cache_dir=tmp_path, compact_threshold=1.5,
            )


class TestFleetFaults:
    def test_sigkilled_worker_point_reassigned_exactly_once(
            self, tmp_path):
        """SIGKILL a worker mid-point: the dispatcher notices the dead
        process, requeues its claimed point once, a surviving worker
        computes it, and the sweep still lands byte-identical with no
        duplicate store writes."""
        serial = _serial_manifest(tmp_path / "serial")
        clear_memo()
        specs = _specs()
        victim = specs[5].spec_hash()
        dispatcher = FleetDispatcher(
            specs, label="g", scenario=SCENARIO,
            cache_dir=tmp_path / "fleet", workers=2,
            heartbeat_interval=0.1, poll_interval=0.05,
            backoff_base=0.05, wall_timeout=120.0,
            spawn_env=_spawn_env(
                REPRO_FLEET_FAULT=f"{victim[:16]}=hang"
            ),
        )
        box = {}

        def drive():
            box["outcome"] = dispatcher.run()

        thread = threading.Thread(target=drive)
        thread.start()
        try:
            # wait for a worker to claim the victim point (it hangs
            # there, heartbeating, simulating a wedged machine)
            claim = None
            deadline = time.monotonic() + 60.0
            while claim is None and time.monotonic() < deadline:
                for c in dispatcher.dirs.active_claims():
                    if c["spec_hash"] == victim:
                        claim = c
                time.sleep(0.02)
            assert claim is not None, "victim point never claimed"
            proc = dispatcher._procs[claim["worker"]]  # noqa: SLF001
            os.kill(proc.pid, signal.SIGKILL)
            while proc.poll() is None:
                time.sleep(0.02)
            # only now disarm: the requeued point must compute cleanly
            (dispatcher.dirs.root / "fault-disarmed").write_text("")
        finally:
            thread.join(timeout=120.0)
        assert not thread.is_alive()
        outcome = box["outcome"]
        assert outcome.complete
        assert outcome.reassignments == {5: 1}
        # exactly one done record per grid index, one store record per
        # point: the reassignment produced no duplicate writes
        done = dispatcher.dirs.done_records()
        assert sorted(done) == list(range(12))
        assert len(ResultStore(tmp_path / "fleet")) == 12
        assert outcome.manifest_path.read_bytes() == serial.read_bytes()

    def test_poison_point_quarantined_after_retry_budget(self, tmp_path):
        """A point that crashes every worker that touches it burns its
        retry budget (with monotone backoff), lands in poison/, and the
        rest of the grid still completes — reported, never retried
        forever."""
        clear_memo()
        specs = _specs()
        victim = specs[3].spec_hash()
        outcome = FleetDispatcher(
            specs, label="g", scenario=SCENARIO,
            cache_dir=tmp_path / "fleet", workers=1,
            heartbeat_interval=0.1, poll_interval=0.05,
            max_retries=2, backoff_base=0.05, wall_timeout=120.0,
            spawn_env=_spawn_env(
                REPRO_FLEET_FAULT=f"{victim[:16]}=exit"
            ),
        ).run()
        assert not outcome.complete
        assert sorted(outcome.poisoned) == [3]
        assert len(outcome.points) == 11
        record = outcome.poisoned[3]
        assert record["spec_hash"] == victim
        history = record["attempts"]
        assert [h["attempt"] for h in history] == [2, 3]
        # monotone backoff timestamps: attempts in order, each waiting
        # strictly longer than the last
        ats = [h["at"] for h in history]
        assert ats == sorted(ats)
        gaps = [h["not_before"] - h["at"] for h in history]
        assert gaps[1] > gaps[0] > 0
        # the manifest is partial — and compare refuses it, same as a
        # killed sweep's
        payload = json.loads(outcome.manifest_path.read_text())
        assert payload["partial"] is True
        assert scenarios_main(
            ["compare", "g", "g", "--cache-dir",
             str(tmp_path / "fleet")]
        ) == 2


# -- the fleet CLI ------------------------------------------------------------

class TestFleetCli:
    def test_run_rejects_path_labels(self, tmp_path, capsys):
        assert fleet_main(
            ["run", SCENARIO, "--label", "../evil",
             "--cache-dir", str(tmp_path)]
        ) == 2
        assert "plain file name" in capsys.readouterr().err

    def test_run_rejects_unknown_scenario(self, tmp_path, capsys):
        assert fleet_main(
            ["run", "no-such", "--cache-dir", str(tmp_path)]
        ) == 2

    def test_store_empty_listing(self, tmp_path, capsys):
        assert fleet_main(["store", "--cache-dir", str(tmp_path)]) == 0
        assert "store is empty" in capsys.readouterr().out

    def test_store_compact_reports_the_rewrite(self, tmp_path, capsys):
        spec, result = _probe_result()
        ResultStore(tmp_path).record(spec, result, "a", SCENARIO)
        assert fleet_main(["store", "compact",
                           "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "store compacted: 1 -> 1 records" in out
        assert "generation 1" in out

    def test_stats_unknown_label(self, tmp_path, capsys):
        assert fleet_main(["stats", "nope",
                           "--cache-dir", str(tmp_path)]) == 2
        assert "no fleet directory" in capsys.readouterr().err

    def test_stats_lists_workers_and_stragglers(self, tmp_path, capsys):
        dirs = FleetDirs(tmp_path / "fleet" / "g").create()
        dirs.write_grid({"label": "g", "scenario": SCENARIO,
                         "n_points": 3})
        dirs.beat("fast", None, points_done=2,
                  telemetry={"points_per_min": 10.0})
        dirs.beat("slow", None, points_done=1,
                  telemetry={"points_per_min": 1.0})
        assert fleet_main(["stats", "g",
                           "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "fleet 'g'" in out
        assert "fast" in out and "slow" in out
        assert "STRAGGLER" in out

    def test_backfill_then_compare_html_from_store(self, tmp_path,
                                                   capsys):
        """The history-to-report path: absorb two manifests into the
        store, then render the HTML regression report straight from
        the index — no manifest re-reads, regressions highlighted."""
        sweeps = tmp_path / "sweeps"
        sweeps.mkdir()
        spec, result = _probe_result()

        def manifest(label, t):
            return {
                "label": label, "scenario": SCENARIO,
                "points": [
                    {"name": f"p[x={x}]",
                     "spec_hash": f"{result.spec_hash[:-2]}{x:02d}",
                     "result": dict(result.to_dict(), t=t * (1 + x))}
                    for x in range(3)
                ],
            }

        (sweeps / "base.json").write_text(json.dumps(manifest("base", 1.0)))
        (sweeps / "slow.json").write_text(json.dumps(manifest("slow", 2.0)))
        assert fleet_main(["backfill", "--cache-dir", str(tmp_path)]) == 0
        assert "6 points indexed" in capsys.readouterr().out
        # the manifests are now redundant: compare reads the store
        (sweeps / "base.json").unlink()
        (sweeps / "slow.json").unlink()
        out = tmp_path / "report.html"
        assert fleet_main(
            ["compare", "base", "slow", "--cache-dir", str(tmp_path),
             "--html", str(out)]
        ) == 0
        html = out.read_text()
        assert "<!DOCTYPE html>" in html
        assert 'class="regression"' in html  # every row doubled
        assert "base" in html and "slow" in html

    def test_compare_markdown_falls_back_to_manifests(self, tmp_path,
                                                      capsys):
        _serial_manifest(tmp_path)
        assert fleet_main(
            ["compare", "g", "g", "--cache-dir", str(tmp_path),
             "--over", "seed"]
        ) == 0
        out = capsys.readouterr().out
        assert "Sweep comparison" in out
