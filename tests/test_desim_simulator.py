"""Unit tests for the desim event loop and signals."""

import math

import pytest

from repro.desim import AllOf, AnyOf, Signal, Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_schedule_fires_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, fired.append, "b")
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(3.0, fired.append, "c")
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 3.0


def test_same_time_events_fire_in_scheduling_order():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(1.0, fired.append, i)
    sim.run()
    assert fired == list(range(10))


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-0.1, lambda: None)


def test_nan_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(float("nan"), lambda: None)


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(5.0, fired.append, "b")
    sim.run(until=2.0)
    assert fired == ["a"]
    assert sim.now == 2.0  # clock advanced exactly to the limit
    sim.run()
    assert fired == ["a", "b"]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    handle.cancel()
    sim.schedule(2.0, fired.append, "y")
    sim.run()
    assert fired == ["y"]


def test_peek_skips_cancelled():
    sim = Simulator()
    h = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    h.cancel()
    assert sim.peek() == 2.0


def test_peek_empty_is_inf():
    sim = Simulator()
    assert sim.peek() == math.inf


def test_schedule_at_absolute_time():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    times = []
    sim.schedule_at(5.0, lambda: times.append(sim.now))
    sim.run()
    assert times == [5.0]


def test_nested_scheduling_from_callback():
    sim = Simulator()
    fired = []

    def outer():
        fired.append(("outer", sim.now))
        sim.schedule(1.0, inner)

    def inner():
        fired.append(("inner", sim.now))

    sim.schedule(1.0, outer)
    sim.run()
    assert fired == [("outer", 1.0), ("inner", 2.0)]


def test_run_not_reentrant():
    sim = Simulator()

    def evil():
        sim.run()

    sim.schedule(1.0, evil)
    with pytest.raises(RuntimeError, match="reentrant"):
        sim.run()


def test_run_until_triggered_deadlock_detected():
    sim = Simulator()
    sig = sim.event("never")
    with pytest.raises(RuntimeError, match="deadlock"):
        sim.run_until_triggered(sig)


def test_run_until_triggered_returns_value():
    sim = Simulator()
    sig = sim.timeout(2.5, value="done")
    assert sim.run_until_triggered(sig) == "done"
    assert sim.now == 2.5


def test_run_until_triggered_time_limit():
    sim = Simulator()
    sig = sim.timeout(100.0)
    with pytest.raises(RuntimeError, match="limit"):
        sim.run_until_triggered(sig, limit=1.0)


class TestSignal:
    def test_succeed_value(self):
        s = Signal("s")
        assert not s.triggered
        s.succeed(42)
        assert s.triggered and s.ok
        assert s.value == 42

    def test_fail_raises_on_value(self):
        s = Signal("s")
        s.fail(ValueError("boom"))
        assert s.triggered and not s.ok
        with pytest.raises(ValueError, match="boom"):
            _ = s.value

    def test_double_trigger_forbidden(self):
        s = Signal("s")
        s.succeed(1)
        with pytest.raises(RuntimeError, match="already triggered"):
            s.succeed(2)

    def test_fail_requires_exception(self):
        s = Signal("s")
        with pytest.raises(TypeError):
            s.fail("not an exception")  # type: ignore[arg-type]

    def test_value_before_trigger_raises(self):
        s = Signal("s")
        with pytest.raises(RuntimeError, match="not triggered"):
            _ = s.value

    def test_subscribe_after_trigger_fires_immediately(self):
        s = Signal("s")
        s.succeed("v")
        got = []
        s._subscribe(lambda sig: got.append(sig.value))
        assert got == ["v"]


class TestCombinators:
    def test_anyof_first_wins(self):
        sim = Simulator()
        a = sim.timeout(2.0, "a")
        b = sim.timeout(1.0, "b")
        any_ = AnyOf([a, b])
        sim.run()
        assert any_.triggered
        assert any_.value == (1, "b")
        assert any_.winner == 1

    def test_anyof_failure_propagates(self):
        sim = Simulator()
        a = sim.event("a")
        b = sim.timeout(5.0)
        any_ = AnyOf([a, b])
        a.fail(RuntimeError("dead"))
        with pytest.raises(RuntimeError, match="dead"):
            _ = any_.value

    def test_anyof_empty_rejected(self):
        with pytest.raises(ValueError):
            AnyOf([])

    def test_allof_collects_all_values(self):
        sim = Simulator()
        sigs = [sim.timeout(float(i), i) for i in range(3)]
        all_ = AllOf(sigs)
        sim.run()
        assert all_.value == [0, 1, 2]

    def test_allof_empty_triggers_immediately(self):
        all_ = AllOf([])
        assert all_.triggered
        assert all_.value == []

    def test_allof_failure(self):
        sim = Simulator()
        a = sim.event("a")
        b = sim.timeout(1.0)
        all_ = AllOf([a, b])
        a.fail(KeyError("k"))
        with pytest.raises(KeyError):
            _ = all_.value


def test_event_count_increments():
    sim = Simulator()
    for _ in range(5):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.event_count == 5
