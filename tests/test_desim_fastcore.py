"""The reference-path fast core: reschedule, lazy compaction, pins.

The desim agenda rework (tuple entries, ``reschedule()`` handle reuse,
lazy-deletion compaction, ``call_later`` one-shots) must be invisible
to the simulation itself: events fire in the same order, the same
callbacks execute, and a churn-heavy scenario produces byte-identical
``sim_events``.  These tests pin that contract and the new mechanics.
"""

import math

import pytest

from repro.desim import Simulator
from repro.desim.simulator import _COMPACT_MIN


# ---------------------------------------------------------------------------
# reschedule()
# ---------------------------------------------------------------------------

def test_reschedule_fired_handle_reuses_object():
    sim = Simulator()
    fired = []
    call = sim.schedule(1.0, fired.append, "a")
    sim.run()
    assert fired == ["a"]
    again = sim.reschedule(call, 2.0, "b")
    assert again is call  # the handle is reused, not replaced
    sim.run()
    assert fired == ["a", "b"]
    assert sim.now == 3.0


def test_reschedule_pending_handle_supersedes_old_entry():
    sim = Simulator()
    fired = []
    call = sim.schedule(1.0, fired.append, "early")
    sim.reschedule(call, 5.0, "late")
    sim.schedule(2.0, fired.append, "mid")
    sim.run()
    assert fired == ["mid", "late"]  # the 1.0s entry went stale in place
    assert sim.now == 5.0


def test_reschedule_cancelled_handle_revives_it():
    sim = Simulator()
    fired = []
    call = sim.schedule(1.0, fired.append, "x")
    call.cancel()
    sim.reschedule(call, 3.0, "y")
    sim.run()
    assert fired == ["y"]


def test_reschedule_consumes_one_seq_like_cancel_plus_schedule():
    """Interleaving with independent events must order exactly as the
    cancel+push idiom it replaces (one sequence number per re-arm)."""
    def run(re_arm):
        sim = Simulator()
        fired = []
        call = sim.schedule(1.0, fired.append, "chain")
        re_arm(sim, call, fired)
        sim.schedule(2.0, fired.append, "other")  # same instant as re-arm
        sim.run()
        return fired

    def with_reschedule(sim, call, fired):
        sim.reschedule(call, 2.0, "rearmed")

    def with_cancel_push(sim, call, fired):
        call.cancel()
        sim.schedule(2.0, fired.append, "rearmed")

    assert run(with_reschedule) == run(with_cancel_push)


def test_reschedule_rejects_bad_delay():
    sim = Simulator()
    call = sim.schedule(1.0, lambda: None)
    with pytest.raises(ValueError):
        sim.reschedule(call, -1.0)
    with pytest.raises(ValueError):
        sim.reschedule(call, float("nan"))


def test_call_later_orders_with_schedule():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "handled")
    sim.call_later(1.0, fired.append, "oneshot")
    sim.schedule(1.0, fired.append, "handled2")
    sim.run()
    assert fired == ["handled", "oneshot", "handled2"]
    assert sim.event_count == 3


def test_call_later_rejects_bad_delay():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.call_later(-0.5, lambda: None)


# ---------------------------------------------------------------------------
# lazy-deletion compaction
# ---------------------------------------------------------------------------

def test_agenda_stays_bounded_under_cancel_heavy_workload():
    """The microbench contract: a ping chain that arms and cancels a
    far-future timeout per round (the classic watchdog pattern) must
    not grow the heap without bound — lazy deletion plus the
    compaction threshold keeps it within a small multiple of the live
    set."""
    sim = Simulator()
    peak = 0
    for round_ in range(5000):
        watchdog = sim.schedule(1e6 + round_, lambda: None)  # never fires
        sim.schedule(0.001, lambda: None)
        sim.run(until=sim.now + 0.01)
        watchdog.cancel()  # the chain re-arms next round
        peak = max(peak, len(sim._agenda))
    assert peak <= 4 * _COMPACT_MIN, (
        f"agenda peaked at {peak} entries for ~1 live timer; "
        f"compaction is not bounding cancelled entries"
    )
    assert sim._dead <= len(sim._agenda)


def test_compaction_preserves_live_ordering():
    sim = Simulator()
    fired = []
    # far-future live events, interleaved with a mass of cancellations
    for i in range(50):
        sim.schedule(100.0 + i, fired.append, i)
    doomed = [sim.schedule(500.0 + i, fired.append, "dead") for i in range(300)]
    for call in doomed:
        call.cancel()  # crosses the compaction threshold
    assert len(sim._agenda) < 350  # compaction ran
    sim.run()
    assert fired == list(range(50))


def test_reschedule_heavy_chain_keeps_heap_small():
    """One handle re-armed thousands of times leaves at most one live
    entry (plus bounded staleness) in the agenda."""
    sim = Simulator()
    ticks = []
    call = sim.schedule(1.0, ticks.append, 0)

    sim.run()
    for i in range(1, 2000):
        sim.reschedule(call, 1.0, i)
        sim.run()
    assert ticks == list(range(2000))
    assert len(sim._agenda) == 0


# ---------------------------------------------------------------------------
# the sim_events pins (byte-identical pre/post fast core)
# ---------------------------------------------------------------------------

#: Recorded at commit fe5b13e (PR 4, pre fast core): the fast core must
#: reproduce these exactly — same events, same order, same count.
SIM_EVENTS_PINS = {
    # churn-heavy recovery point: Poisson crashes + rejoins + re-dispatch
    ("recovery-grid", "churn_profile.rejoin_rate", 2.0): 14257.0,
    # election-heavy coordinator point: crashes + stand-in elections
    ("coordinator-grid", "churn_profile.coordinator_churn_rate", 1.5): 15976.0,
}


@pytest.mark.parametrize("grid,axis,value", sorted(SIM_EVENTS_PINS))
def test_churn_heavy_sim_events_pinned(grid, axis, value):
    from repro.scenarios import SCENARIOS
    from repro.scenarios.runner import run_scenario

    spec = SCENARIOS[grid].base.with_override(axis, value)
    result = run_scenario(spec)
    assert result.metrics["sim_events"] == SIM_EVENTS_PINS[(grid, axis, value)]
