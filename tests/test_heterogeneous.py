"""Tests for the heterogeneous-grid future-work experiment."""

import pytest

from repro.experiments.heterogeneous import (
    SPEED_RANGE,
    heterogeneous_grid,
    predict_heterogeneous,
    run_heterogeneous,
    select_hosts,
)
from repro.experiments.stage2 import predict_on
from repro.platforms.cluster import DEFAULT_NODE_SPEED


class TestGrid:
    def test_speeds_in_range_and_varied(self):
        grid = heterogeneous_grid()
        speeds = [h.speed / DEFAULT_NODE_SPEED for h in grid.hosts]
        assert all(SPEED_RANGE[0] <= s <= SPEED_RANGE[1] for s in speeds)
        assert max(speeds) - min(speeds) > 0.3

    def test_deterministic_per_seed(self):
        from repro.scenarios import build_platform

        def fresh_speeds(seed):
            # clear both cache levels so the platform (and its speed
            # assignment) is genuinely rebuilt
            heterogeneous_grid.cache_clear()
            build_platform.cache_clear()
            return [h.speed for h in heterogeneous_grid(seed=seed).hosts]

        s1 = fresh_speeds(3)
        s2 = fresh_speeds(3)
        s3 = fresh_speeds(4)
        heterogeneous_grid.cache_clear()
        build_platform.cache_clear()
        assert s1 == s2
        assert s1 != s3  # the speed draw actually depends on the seed

    def test_selection_policies(self):
        grid = heterogeneous_grid()
        fastest = select_hosts(grid, 4, "fastest")
        slowest = select_hosts(grid, 4, "slowest")
        assert min(h.speed for h in fastest) > max(h.speed for h in slowest)
        spread = select_hosts(grid, 4, "spread")
        assert len({h.name for h in spread}) == 4
        with pytest.raises(ValueError):
            select_hosts(grid, 4, "alphabetical")


class TestPrediction:
    def test_hetero_slower_than_homogeneous_cluster(self):
        """Sub-reference clocks + WAN links: the grid cannot beat the
        cluster at equal peer count."""
        t_grid = predict_heterogeneous(4, "O0", "fastest")
        t_cluster = predict_on("grid5000", 4, "O0")
        assert t_grid > t_cluster

    def test_fastest_selection_beats_slowest(self):
        fast = predict_heterogeneous(4, "O0", "fastest")
        slow = predict_heterogeneous(4, "O0", "slowest")
        assert fast < slow
        # the slowest peer paces the iteration: gap reflects clock ratio
        assert slow / fast > 1.2

    def test_run_heterogeneous_bundle(self):
        result = run_heterogeneous(peer_counts=(2, 4), policies=("fastest",))
        assert set(result.grid_times["fastest"]) == {2, 4}
        assert set(result.cluster_times) == {2, 4}
        assert "fastest" in result.equivalents
