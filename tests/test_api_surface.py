"""Public API hygiene: every exported symbol exists and is documented."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.desim",
    "repro.net",
    "repro.platforms",
    "repro.simx",
    "repro.p2psap",
    "repro.p2pdc",
    "repro.dperf",
    "repro.dperf.minic",
    "repro.apps",
    "repro.analysis",
    "repro.experiments",
    "repro.scenarios",
    "repro.serve",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_imports_and_has_docstring(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a module docstring"


@pytest.mark.parametrize("name", PACKAGES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", [])
    assert exported, f"{name} does not declare __all__"
    for symbol in exported:
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


@pytest.mark.parametrize("name", [p for p in PACKAGES if p != "repro"])
def test_public_classes_and_functions_documented(name):
    module = importlib.import_module(name)
    undocumented = []
    for symbol in getattr(module, "__all__", []):
        obj = getattr(module, symbol)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not inspect.getdoc(obj):
                undocumented.append(symbol)
    assert not undocumented, f"{name}: undocumented exports {undocumented}"


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2
