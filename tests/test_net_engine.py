"""Tests for the fluid network engine and topology routing."""

import math

import pytest

from repro.desim import Simulator
from repro.net import (
    FluidNetwork,
    Host,
    Link,
    Router,
    TcpModel,
    Topology,
    TransferInfo,
)


def two_host_net(bw=1e6, lat=0.01, tcp=TcpModel(bandwidth_factor=1.0, window=1e18)):
    sim = Simulator()
    topo = Topology()
    a = topo.add_node(Host("a", speed=1e9))
    b = topo.add_node(Host("b", speed=1e9))
    topo.add_link(a, b, bw, lat)
    return sim, FluidNetwork(sim, topo, tcp=tcp), a, b


class TestTopology:
    def test_route_direct(self):
        _sim, net, a, b = two_host_net()
        route = net.topology.route(a, b)
        assert [l.name for l in route] == ["a--b"]

    def test_route_self_is_empty(self):
        _sim, net, a, _b = two_host_net()
        assert net.topology.route(a, a) == []

    def test_route_via_router(self):
        topo = Topology()
        a = topo.add_node(Host("a"))
        r = topo.add_node(Router("r"))
        b = topo.add_node(Host("b"))
        topo.add_link(a, r, 1e6, 0.001)
        topo.add_link(r, b, 1e6, 0.002)
        route = topo.route(a, b)
        assert [l.name for l in route] == ["a--r", "r--b"]
        assert topo.route_latency(a, b) == pytest.approx(0.003)

    def test_no_route_raises(self):
        topo = Topology()
        a = topo.add_node(Host("a"))
        b = topo.add_node(Host("b"))
        with pytest.raises(ValueError, match="no route"):
            topo.route(a, b)

    def test_duplicate_node_rejected(self):
        topo = Topology()
        topo.add_node(Host("a"))
        with pytest.raises(ValueError, match="duplicate"):
            topo.add_node(Host("a"))

    def test_unregistered_node_link_rejected(self):
        topo = Topology()
        a = topo.add_node(Host("a"))
        with pytest.raises(KeyError):
            topo.add_link(a, Host("ghost"), 1e6, 0.0)

    def test_full_duplex_directions_independent(self):
        topo = Topology()
        a = topo.add_node(Host("a"))
        b = topo.add_node(Host("b"))
        fwd, back = topo.add_link(a, b, 1e6, 0.0)
        assert fwd is not back
        assert topo.route(a, b) == [fwd]
        assert topo.route(b, a) == [back]

    def test_simplex_link(self):
        topo = Topology()
        a = topo.add_node(Host("a"))
        b = topo.add_node(Host("b"))
        fwd, back = topo.add_link(a, b, 1e6, 0.0, duplex=False)
        assert back is None
        with pytest.raises(ValueError):
            topo.route(b, a)

    def test_hosts_ordered(self):
        topo = Topology()
        names = [f"h{i}" for i in range(5)]
        for n in names:
            topo.add_node(Host(n))
        assert [h.name for h in topo.hosts] == names


class TestLinkValidation:
    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            Link("bad", 0.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            Link("bad", 1.0, -1.0)


class TestFluidTransfers:
    def test_single_transfer_time(self):
        sim, net, a, b = two_host_net(bw=1e6, lat=0.01)
        done = net.send(a, b, 1e6)  # 1 MB over 1 MB/s + 10 ms
        info = sim.run_until_triggered(done)
        assert isinstance(info, TransferInfo)
        assert info.duration == pytest.approx(1.01, rel=1e-9)

    def test_zero_byte_message_is_latency_only(self):
        sim, net, a, b = two_host_net(bw=1e6, lat=0.01)
        done = net.send(a, b, 0)
        info = sim.run_until_triggered(done)
        assert info.duration == pytest.approx(0.01)

    def test_same_host_transfer_instant(self):
        sim, net, a, _b = two_host_net()
        done = net.send(a, a, 1e9)
        info = sim.run_until_triggered(done)
        assert info.duration == pytest.approx(0.0)

    def test_negative_size_rejected(self):
        _sim, net, a, b = two_host_net()
        with pytest.raises(ValueError):
            net.send(a, b, -1)

    def test_two_concurrent_transfers_share_link(self):
        sim, net, a, b = two_host_net(bw=1e6, lat=0.0)
        d1 = net.send(a, b, 1e6)
        d2 = net.send(a, b, 1e6)
        sim.run()
        # Both share 1 MB/s → each gets 0.5 MB/s → 2 s.
        assert d1.value.duration == pytest.approx(2.0, rel=1e-6)
        assert d2.value.duration == pytest.approx(2.0, rel=1e-6)

    def test_staggered_transfer_speeds_up_after_first_finishes(self):
        sim, net, a, b = two_host_net(bw=1e6, lat=0.0)
        d1 = net.send(a, b, 1e6)  # alone: would take 1s
        sim.run(until=0.5)
        d2 = net.send(a, b, 1e6)
        sim.run()
        # d1: 0.5 s alone, then shares; remaining 0.5 MB at 0.5 MB/s →
        # done at t=1.5.  d2 moved 0.5 MB during the shared phase, then
        # finishes its last 0.5 MB at full speed → done at t=2.0.
        assert d1.value.end == pytest.approx(1.5, rel=1e-6)
        assert d2.value.end == pytest.approx(2.0, rel=1e-6)

    def test_opposite_directions_do_not_contend(self):
        sim, net, a, b = two_host_net(bw=1e6, lat=0.0)
        d1 = net.send(a, b, 1e6)
        d2 = net.send(b, a, 1e6)
        sim.run()
        assert d1.value.duration == pytest.approx(1.0, rel=1e-6)
        assert d2.value.duration == pytest.approx(1.0, rel=1e-6)

    def test_tcp_window_caps_high_latency_path(self):
        tcp = TcpModel(bandwidth_factor=1.0, window=1e4)  # 10 kB window
        sim, net, a, b = two_host_net(bw=1e9, lat=0.1, tcp=tcp)
        done = net.send(a, b, 1e6)
        info = sim.run_until_triggered(done)
        # cap = 1e4 / (2*0.1) = 5e4 B/s → 20 s + 0.1 latency.
        assert info.duration == pytest.approx(20.1, rel=1e-6)

    def test_bandwidth_factor_applied(self):
        tcp = TcpModel(bandwidth_factor=0.5, window=1e18)
        sim, net, a, b = two_host_net(bw=1e6, lat=0.0, tcp=tcp)
        done = net.send(a, b, 1e6)
        info = sim.run_until_triggered(done)
        assert info.duration == pytest.approx(2.0, rel=1e-6)

    def test_contention_through_shared_backbone(self):
        # a0,a1 -- r0 --backbone-- r1 -- b0,b1 ; backbone narrower.
        sim = Simulator()
        topo = Topology()
        r0, r1 = topo.add_node(Router("r0")), topo.add_node(Router("r1"))
        topo.add_link(r0, r1, 1e6, 0.0)  # shared bottleneck
        srcs, dsts = [], []
        for i in range(2):
            s = topo.add_node(Host(f"a{i}"))
            d = topo.add_node(Host(f"b{i}"))
            topo.add_link(s, r0, 1e7, 0.0)
            topo.add_link(r1, d, 1e7, 0.0)
            srcs.append(s)
            dsts.append(d)
        net = FluidNetwork(sim, topo, tcp=TcpModel(1.0, 1e18))
        d0 = net.send(srcs[0], dsts[0], 1e6)
        d1 = net.send(srcs[1], dsts[1], 1e6)
        sim.run()
        assert d0.value.duration == pytest.approx(2.0, rel=1e-6)
        assert d1.value.duration == pytest.approx(2.0, rel=1e-6)

    def test_transfer_statistics(self):
        sim, net, a, b = two_host_net()
        net.send(a, b, 500.0)
        net.send(a, b, 1500.0)
        sim.run()
        assert net.transfers_completed == 2
        assert net.bytes_delivered == pytest.approx(2000.0)

    def test_transfer_time_estimate_matches_uncontended_run(self):
        sim, net, a, b = two_host_net(bw=1e6, lat=0.01)
        est = net.transfer_time_estimate(a, b, 1e6)
        done = net.send(a, b, 1e6)
        info = sim.run_until_triggered(done)
        assert info.duration == pytest.approx(est, rel=1e-9)

    def test_many_flows_conservation(self):
        """Aggregate throughput through one link never exceeds capacity:
        total bytes delivered / makespan <= bandwidth."""
        sim, net, a, b = two_host_net(bw=1e6, lat=0.0)
        n = 7
        sigs = [net.send(a, b, 2e5) for _ in range(n)]
        sim.run()
        makespan = max(s.value.end for s in sigs)
        assert n * 2e5 / makespan <= 1e6 * (1 + 1e-9)
        # equal flows, equal finish
        assert makespan == pytest.approx(n * 2e5 / 1e6, rel=1e-6)


class TestReplayHotPath:
    """Route interning, event-batched reshare, uncontended skip."""

    def test_uncontended_transfers_skip_the_solver(self):
        # two flows on disjoint links: no reshare is ever needed
        sim = Simulator()
        topo = Topology()
        hosts = [topo.add_node(Host(f"h{i}")) for i in range(4)]
        topo.add_link(hosts[0], hosts[1], 1e6, 0.0)
        topo.add_link(hosts[2], hosts[3], 1e6, 0.0)
        net = FluidNetwork(sim, topo, tcp=TcpModel(1.0, 1e18))
        d1 = net.send(hosts[0], hosts[1], 1e6)
        d2 = net.send(hosts[2], hosts[3], 1e6)
        sim.run()
        assert d1.value.duration == pytest.approx(1.0, rel=1e-6)
        assert d2.value.duration == pytest.approx(1.0, rel=1e-6)
        assert net.reshare_count == 0

    def test_contended_transfers_invoke_the_solver_once_per_instant(self):
        sim, net, a, b = two_host_net(bw=1e6, lat=0.0)
        for _ in range(5):
            net.send(a, b, 1e6)
        sim.run()
        # five same-instant arrivals coalesce into one reshare (plus
        # the reshares triggered as the equal flows complete together)
        assert 1 <= net.reshare_count <= 2

    def test_route_info_interned_per_pair(self):
        sim, net, a, b = two_host_net()
        net.send(a, b, 10.0)
        net.send(a, b, 20.0)
        assert len(net._routes) == 1
        info = net._routes[("a", "b")]
        assert [l.name for l in info.route] == ["a--b"]
        assert info.latency == pytest.approx(0.01)

    def test_binding_bookkeeping_resets_when_idle(self):
        sim, net, a, b = two_host_net(bw=1e6, lat=0.0)
        net.send(a, b, 1e5)
        net.send(a, b, 1e5)
        sim.run()
        assert net.active_flow_count == 0
        assert not net._binding
        assert not net._ceiling_load

    def test_route_intern_invalidated_by_topology_change(self):
        sim = Simulator()
        topo = Topology()
        a = topo.add_node(Host("a"))
        b = topo.add_node(Host("b"))
        r = topo.add_node(Router("r"))
        topo.add_link(a, r, 1e6, 0.001)
        topo.add_link(r, b, 1e6, 0.001)
        net = FluidNetwork(sim, topo, tcp=TcpModel(1.0, 1e18))
        d1 = net.send(a, b, 1e3)
        sim.run()
        assert d1.value.duration == pytest.approx(0.003, rel=1e-6)
        # a direct shortcut appears: later sends must use it
        topo.add_link(a, b, 1e6, 0.0001)
        d2 = net.send(a, b, 1e3)
        sim.run()
        assert d2.value.duration == pytest.approx(0.0011, rel=1e-6)
