"""Tests for the mini-C tokenizer."""

import pytest

from repro.dperf.minic import LexError, tokenize


def kinds(src):
    return [(t.kind, t.text) for t in tokenize(src) if t.kind != "eof"]


def test_empty_source():
    toks = tokenize("")
    assert len(toks) == 1 and toks[0].kind == "eof"


def test_keywords_vs_identifiers():
    assert kinds("int x") == [("keyword", "int"), ("ident", "x")]
    assert kinds("integer") == [("ident", "integer")]


def test_integer_literals():
    assert kinds("42") == [("int", "42")]
    assert kinds("0") == [("int", "0")]


def test_float_literals():
    assert kinds("3.14") == [("float", "3.14")]
    assert kinds("1e-9") == [("float", "1e-9")]
    assert kinds("2.5E+3") == [("float", "2.5E+3")]
    assert kinds(".5") == [("float", ".5")]


def test_float_suffix_dropped():
    assert kinds("1.0f") == [("float", "1.0")]


def test_malformed_exponent():
    with pytest.raises(LexError, match="exponent"):
        tokenize("1e+")


def test_string_literal_with_escapes():
    toks = kinds('"a\\nb"')
    assert toks == [("string", "a\nb")]


def test_unterminated_string():
    with pytest.raises(LexError, match="unterminated"):
        tokenize('"abc')


def test_char_literal_becomes_int():
    assert kinds("'A'") == [("int", "65")]


def test_operators_longest_match():
    assert kinds("a<=b") == [("ident", "a"), ("op", "<="), ("ident", "b")]
    assert kinds("i++") == [("ident", "i"), ("op", "++")]
    assert kinds("x+=1") == [("ident", "x"), ("op", "+="), ("int", "1")]
    assert kinds("a&&b||c") == [
        ("ident", "a"), ("op", "&&"), ("ident", "b"), ("op", "||"), ("ident", "c")
    ]


def test_line_comments_skipped():
    assert kinds("a // comment\nb") == [("ident", "a"), ("ident", "b")]


def test_block_comments_skipped():
    assert kinds("a /* multi\nline */ b") == [("ident", "a"), ("ident", "b")]


def test_unterminated_block_comment():
    with pytest.raises(LexError, match="unterminated"):
        tokenize("/* never ends")


def test_preprocessor_lines_recorded_not_tokenized():
    from repro.dperf.minic.lexer import Lexer

    lexer = Lexer("#include <stdio.h>\nint x;\n")
    toks = [(t.kind, t.text) for t in lexer.tokens() if t.kind != "eof"]
    assert toks == [("keyword", "int"), ("ident", "x"), ("op", ";")]
    assert lexer.preprocessor_lines == ["#include <stdio.h>"]


def test_positions_tracked():
    toks = tokenize("int\n  x;")
    assert toks[0].line == 1 and toks[0].col == 1
    assert toks[1].line == 2 and toks[1].col == 3


def test_unexpected_character():
    with pytest.raises(LexError, match="unexpected"):
        tokenize("int x @ y")


def test_division_not_comment():
    assert kinds("a / b") == [("ident", "a"), ("op", "/"), ("ident", "b")]
