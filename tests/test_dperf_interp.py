"""Interpreter correctness: semantics, accounting, multi-rank runs."""

import pytest

from repro.dperf import InterpError, run_distributed, run_single
from repro.dperf.minic import parse


def run(src, entry="main", args=(), **kw):
    return run_single(parse(src), entry, args, **kw)


class TestScalars:
    def test_return_value(self):
        assert run("int main() { return 41 + 1; }").value == 42

    def test_arith_precedence(self):
        assert run("int main() { return 2 + 3 * 4; }").value == 14

    def test_c_integer_division_truncates_toward_zero(self):
        assert run("int main() { return 7 / 2; }").value == 3
        assert run("int main() { return -7 / 2; }").value == -3

    def test_c_modulo_sign(self):
        assert run("int main() { return -7 % 3; }").value == -1

    def test_division_by_zero_int(self):
        with pytest.raises(InterpError, match="division by zero"):
            run("int main() { return 1 / 0; }")

    def test_float_arithmetic(self):
        assert run("double main() { return 1.5 * 2.0; }").value == pytest.approx(3.0)

    def test_int_var_truncates_float(self):
        assert run("int main() { int x = 0; x = 7.9; return x; }").value == 7

    def test_cast(self):
        assert run("double main() { return (double)7 / (double)2; }").value == 3.5

    def test_compound_assignment(self):
        assert run("int main() { int x = 10; x -= 3; x *= 2; return x; }").value == 14

    def test_pre_post_increment(self):
        src = "int main() { int i = 5; int a = i++; int b = ++i; return a * 100 + b; }"
        assert run(src).value == 507

    def test_ternary(self):
        assert run("int main() { return 1 > 2 ? 10 : 20; }").value == 20

    def test_logical_short_circuit(self):
        # RHS would divide by zero if evaluated
        src = "int main() { int z = 0; return (z != 0) && (1 / z > 0); }"
        assert run(src).value == 0

    def test_comparison_returns_int(self):
        assert run("int main() { return (3 < 4) + (4 < 3); }").value == 1

    def test_uninitialized_scalar_is_zero(self):
        assert run("int main() { int x; return x; }").value == 0

    def test_globals(self):
        assert run("int g = 7; int main() { g += 1; return g; }").value == 8


class TestControlFlow:
    def test_while_loop(self):
        src = "int main() { int s = 0; int i = 1; while (i <= 10) { s += i; i++; } return s; }"
        assert run(src).value == 55

    def test_for_loop(self):
        src = "int main() { int s = 0; for (int i = 0; i < 5; i++) s += i; return s; }"
        assert run(src).value == 10

    def test_break(self):
        src = "int main() { int i = 0; while (1) { if (i == 7) break; i++; } return i; }"
        assert run(src).value == 7

    def test_continue(self):
        src = """
        int main() {
            int s = 0;
            for (int i = 0; i < 10; i++) { if (i % 2 == 0) continue; s += i; }
            return s;
        }
        """
        assert run(src).value == 25

    def test_nested_loops(self):
        src = """
        int main() {
            int s = 0;
            for (int i = 0; i < 3; i++)
                for (int j = 0; j < 4; j++)
                    s += i * j;
            return s;
        }
        """
        assert run(src).value == 18

    def test_step_limit_catches_infinite_loop(self):
        with pytest.raises(InterpError, match="step limit"):
            run("int main() { while (1) { } return 0; }", max_steps=1000)

    def test_recursion(self):
        src = "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); } int main() { return fib(10); }"
        assert run(src).value == 55


class TestArrays:
    def test_1d_array(self):
        src = """
        int main() {
            double u[10];
            for (int i = 0; i < 10; i++) u[i] = (double)i * 2.0;
            return (int)u[7];
        }
        """
        assert run(src).value == 14

    def test_2d_array(self):
        src = """
        int main() {
            double m[3][4];
            for (int i = 0; i < 3; i++)
                for (int j = 0; j < 4; j++)
                    m[i][j] = (double)(i * 10 + j);
            return (int)m[2][3];
        }
        """
        assert run(src).value == 23

    def test_vla_dimension_from_param(self):
        src = """
        double total(int n) {
            double u[n];
            for (int i = 0; i < n; i++) u[i] = 1.0;
            double s = 0.0;
            for (int i = 0; i < n; i++) s += u[i];
            return s;
        }
        """
        assert run(src, "total", [6]).value == 6.0

    def test_array_passed_by_reference(self):
        src = """
        void fill(double u[], int n) { for (int i = 0; i < n; i++) u[i] = 5.0; }
        double main() { double u[4]; fill(u, 4); return u[3]; }
        """
        assert run(src).value == 5.0

    def test_row_view_decay(self):
        src = """
        void set_row(double row[], int n) { for (int j = 0; j < n; j++) row[j] = 9.0; }
        double main() { double m[2][3]; set_row(m[1], 3); return m[1][2] + m[0][2]; }
        """
        assert run(src).value == 9.0

    def test_out_of_bounds_read(self):
        with pytest.raises(InterpError, match="out of bounds"):
            run("int main() { double u[3]; return (int)u[3]; }")

    def test_out_of_bounds_negative(self):
        with pytest.raises(InterpError, match="out of bounds"):
            run("int main() { double u[3]; int i = -1; return (int)u[i]; }")

    def test_zero_dim_rejected(self):
        with pytest.raises(InterpError, match="<= 0"):
            run("int main() { int n = 0; double u[n]; return 0; }")

    def test_int_array_truncation(self):
        src = "int main() { int a[2]; a[0] = 3.99; return a[0]; }"
        assert run(src).value == 3


class TestBuiltins:
    def test_math(self):
        src = "double main() { return sqrt(16.0) + fabs(-2.0) + fmax(1.0, 3.0) + fmin(1.0, 3.0); }"
        assert run(src).value == pytest.approx(4 + 2 + 3 + 1)

    def test_pow_exp_log(self):
        src = "double main() { return pow(2.0, 10.0) + exp(0.0) + log(1.0); }"
        assert run(src).value == pytest.approx(1025.0)

    def test_sqrt_negative_raises(self):
        with pytest.raises(InterpError, match="sqrt"):
            run("double main() { return sqrt(-1.0); }")

    def test_printf_captured(self):
        result = run('int main() { printf("x=%d y=%f s=%s\\n", 3, 2.5, "hi"); return 0; }')
        assert result.output == ["x=3 y=2.500000 s=hi\n"]

    def test_printf_percent_escape(self):
        assert run('int main() { printf("100%%"); return 0; }').output == ["100%"]


class TestAccounting:
    def test_census_nonempty(self):
        res = run("int main() { int s = 0; for (int i = 0; i < 100; i++) s += i; return s; }")
        assert res.census.total_ops > 100

    def test_flops_counted_for_float_ops(self):
        res = run("double main() { double a = 1.0; double b = 2.0; return a * b + a / b; }")
        assert res.census.get("fp_mul", 0) >= 1
        assert res.census.get("fp_div", 0) >= 1

    def test_mem_ops_counted(self):
        res = run("int main() { double u[4]; u[1] = 1.0; return (int)u[1]; }")
        assert res.census.get("mem_store", 0) >= 1
        assert res.census.get("mem_load", 0) >= 1

    def test_census_scales_linearly_with_trip_count(self):
        def ops(n):
            return run(
                f"int main() {{ int s = 0; for (int i = 0; i < {n}; i++) s += i; return s; }}"
            ).census.total_ops

        assert ops(200) / ops(100) == pytest.approx(2.0, rel=0.05)


class TestDistributed:
    RING = """
    int main(int token) {
        int rank = p2psap_rank();
        int size = p2psap_size();
        double buf[1];
        if (rank == 0) {
            buf[0] = (double)token;
            p2psap_send((rank + 1) % size, buf, 1);
            p2psap_recv(size - 1, buf, 1);
        } else {
            p2psap_recv(rank - 1, buf, 1);
            buf[0] = buf[0] + 1.0;
            p2psap_send((rank + 1) % size, buf, 1);
        }
        return (int)buf[0];
    }
    """

    def test_ring_passes_real_data(self):
        runs = run_distributed(parse(self.RING), "main", 4, args=[100])
        # token incremented by ranks 1,2,3 → rank 0 sees 103
        assert runs[0].value == 103

    def test_comm_events_recorded(self):
        runs = run_distributed(parse(self.RING), "main", 3, args=[0])
        from repro.dperf import CommRecord

        kinds = [e.kind for e in runs[0].entries if isinstance(e, CommRecord)]
        assert kinds == ["send", "recv"]

    def test_allreduce_max(self):
        src = """
        double main() {
            double x = (double)p2psap_rank() * 2.0;
            return p2psap_allreduce_max(x);
        }
        """
        runs = run_distributed(parse(src), "main", 4)
        assert all(r.value == 6.0 for r in runs)

    def test_barrier_all_ranks(self):
        src = "int main() { p2psap_barrier(); p2psap_barrier(); return p2psap_rank(); }"
        runs = run_distributed(parse(src), "main", 3)
        assert [r.value for r in runs] == [0, 1, 2]

    def test_recv_count_mismatch_detected(self):
        src = """
        int main() {
            double buf[8];
            if (p2psap_rank() == 0) { p2psap_send(1, buf, 4); }
            else { p2psap_recv(0, buf, 8); }
            return 0;
        }
        """
        with pytest.raises(InterpError, match="count"):
            run_distributed(parse(src), "main", 2, timeout=10.0)

    def test_rank_failure_reported_not_hung(self):
        src = """
        int main() {
            if (p2psap_rank() == 1) { int z = 0; return 1 / z; }
            p2psap_barrier();
            return 0;
        }
        """
        with pytest.raises(InterpError, match="rank 1|barrier"):
            run_distributed(parse(src), "main", 2, timeout=10.0)

    def test_per_rank_args_callable(self):
        src = "int main(int x) { return x * 10; }"
        runs = run_distributed(parse(src), "main", 3, args=lambda r: [r + 1])
        assert [r.value for r in runs] == [10, 20, 30]

    def test_null_comm_send_rejected(self):
        with pytest.raises(InterpError, match="no peers"):
            run("int main() { double b[1]; p2psap_send(0, b, 1); return 0; }")
