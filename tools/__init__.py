"""Repository tooling (CI helpers, not part of the repro package)."""
