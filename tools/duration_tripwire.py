"""CI per-test duration tripwire.

A single slow test is a flakiness/perf regression in the making:
catch it the moment it lands, not when the suite times out months
later.  CI pipes the tier-1 ``--durations`` report through
:func:`main`; any test phase over :data:`TRIPWIRE_SECONDS` fails the
build — unless the test is on the :data:`EXEMPT` list, which exists
for exactly one kind of test: a harness whose *job* is sustained load
(the serve soak), where wall-clock is the workload, not an accident.

The threshold lives here — one constant — so the CI step, the exempt
soak test, and any future long-running harness all read the same
number instead of each hard-coding its own.
"""

from __future__ import annotations

import re
import sys
from typing import List, Sequence, Tuple

#: The per-test budget (seconds) CI enforces on every phase
#: (setup/call/teardown) of every tier-1 test.
TRIPWIRE_SECONDS = 20.0

#: Substrings of test node ids exempt from the tripwire.  Keep this
#: list painfully short and each entry justified: an exempt test's
#: duration is bounded only by the suite timeout.
EXEMPT: Tuple[str, ...] = (
    # the serve soak harness: >=5k queries across concurrent clients
    # with a pinned throughput floor — sustained wall-clock is the
    # point of the test, not a regression
    "tests/test_serve.py::test_soak_",
)

_DURATION_RE = re.compile(
    r"\s*(\d+(?:\.\d+)?)s\s+(call|setup|teardown)\s+(\S+)"
)


def is_exempt(node_id: str) -> bool:
    """Whether a test node id is on the exemption list."""
    return any(marker in node_id for marker in EXEMPT)


def check(lines: Sequence[str],
          limit: float = TRIPWIRE_SECONDS) -> List[str]:
    """The over-budget, non-exempt duration lines of a pytest
    ``--durations`` report."""
    slow = []
    for line in lines:
        m = _DURATION_RE.match(line)
        if m and float(m.group(1)) > limit and not is_exempt(m.group(3)):
            slow.append(line.strip())
    return slow


def main(argv: Sequence[str]) -> int:
    """``python tools/duration_tripwire.py <durations-report>``"""
    if len(argv) != 1:
        print("usage: python tools/duration_tripwire.py "
              "<durations-report>", file=sys.stderr)
        return 2
    with open(argv[0]) as fh:
        slow = check(fh.readlines())
    if slow:
        print(f"tests over the {TRIPWIRE_SECONDS}s tripwire:")
        print("\n".join(slow))
        return 1
    print(f"no non-exempt test over {TRIPWIRE_SECONDS}s")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
