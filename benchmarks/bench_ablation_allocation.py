"""Ablation A1 — hierarchical vs flat task allocation (paper §III-C).

The paper's claim: hierarchical allocation is faster because the
submitter only contacts coordinators; reservation and subtask sending
happen in parallel per group, and results funnel through coordinators
instead of swamping the submitter.  The flat baseline reserves every
peer serially from the submitter.
"""

import pytest
from conftest import emit

from repro.analysis import format_table
from repro.p2pdc import TaskSpec, WorkloadSpec, deploy_overlay
from repro.platforms import build_cluster

PEER_COUNTS = (8, 16, 32)


def tiny_workload():
    return WorkloadSpec(
        name="alloc-probe", nit=1, halo_bytes=256,
        iteration_time=lambda r, n: 1e-4, check_every=0, noise_frac=0.0,
        subtask_bytes=65536,  # a real executable payload to dispatch
    )


def allocation_time(n_peers: int, flat: bool) -> float:
    platform = build_cluster(n_peers + 1)
    dep = deploy_overlay(platform, n_peers=n_peers, n_zones=4)
    spec = TaskSpec(workload=tiny_workload(), n_peers=n_peers, spares=0)
    sig = dep.submitter.submit_flat(spec) if flat else dep.submitter.submit(spec)
    dep.overlay.run_until(sig, limit=1e6)
    outcome = sig.value
    assert outcome.ok, outcome.reason
    return outcome.timings.allocation_time


def run_sweep():
    rows = []
    for n in PEER_COUNTS:
        hier = allocation_time(n, flat=False)
        flat = allocation_time(n, flat=True)
        rows.append((n, hier, flat, flat / hier))
    return rows


def test_ablation_hierarchical_vs_flat_allocation(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    emit("ablation_allocation", format_table(
        ["peers", "hierarchical alloc [s]", "flat alloc [s]", "flat/hier"],
        [[n, f"{h:.4f}", f"{f:.4f}", f"{r:.1f}x"] for n, h, f, r in rows],
    ))

    for n, hier, flat, ratio in rows:
        assert hier < flat, f"hierarchy not faster at {n} peers"
    # the gap widens with the peer count (the submitter bottleneck)
    ratios = [r for _n, _h, _f, r in rows]
    assert ratios[-1] > ratios[0]
