"""K1 — microbenchmarks of the simulation substrates.

Not a paper artifact: these keep the infrastructure honest (event-loop
throughput, max-min solver, trace replay rate) so regressions in the
substrates are visible independently of the experiment numbers.
"""

from repro.desim import Simulator
from repro.net import FluidNetwork, Host, Link, Topology, maxmin_allocation
from repro.platforms import build_cluster
from repro.simx import Compute, ISend, Recv, Trace, replay_traces


def test_event_loop_throughput(benchmark):
    def run():
        sim = Simulator()
        for i in range(20_000):
            sim.schedule(float(i % 97), lambda: None)
        sim.run()
        return sim.event_count

    count = benchmark(run)
    assert count == 20_000


def test_process_switching(benchmark):
    def run():
        sim = Simulator()

        def proc():
            for _ in range(500):
                yield sim.timeout(1.0)

        for _ in range(20):
            sim.process(proc())
        sim.run()
        return sim.now

    assert benchmark(run) == 500.0


def test_maxmin_solver(benchmark):
    links = [Link(f"l{i}", 1e9, 0.0) for i in range(50)]
    flows = {
        f"f{i}": [links[i % 50], links[(i * 7 + 3) % 50]] for i in range(200)
    }

    alloc = benchmark(maxmin_allocation, flows)
    assert len(alloc) == 200


def test_fluid_many_transfers(benchmark):
    def run():
        sim = Simulator()
        topo = Topology()
        hosts = [topo.add_node(Host(f"h{i}")) for i in range(16)]
        hub = topo.add_node(Host("hub"))
        for h in hosts:
            topo.add_link(h, hub, 1e8, 1e-4)
        net = FluidNetwork(sim, topo)
        for i in range(400):
            net.send(hosts[i % 16], hosts[(i + 1) % 16], 1e5)
        sim.run()
        return net.transfers_completed

    assert benchmark(run) == 400


def test_trace_replay_rate(benchmark):
    platform = build_cluster(4)
    events_per_rank = 600
    traces = []
    for r in range(4):
        events = []
        peer = (r + 1) % 4
        back = (r - 1) % 4
        for _ in range(events_per_rank // 3):
            events.append(Compute(10_000))
            events.append(ISend(peer, 1024, "m"))
            events.append(Recv(back, "m"))
        traces.append(Trace(rank=r, nprocs=4, events=events))

    result = benchmark(replay_traces, traces, platform)
    assert result.events_replayed == 4 * (events_per_rank // 3) * 3
