"""S1 — scenario-engine smoke benchmark + replay hot path.

One tiny sweep through the cached parallel runner: measures the
engine's own overhead (spec hashing, memo, disk cache, result
serialization) against a warm in-process memo, and regenerates a
small results table. Fast by construction — this is the bench CI runs
on every push.

``test_replay_hot_path`` times the max-min trace replay on the two
1024-node platforms (campus LAN, Daisy xDSL) — the inner loop every
churn-grid point pays — against the recorded pre-PR-2 baseline in
``benchmarks/BENCH_replay.json`` (route-set interning + event-batched
reshare + constraint-reduced solver landed at ≥2× there).  Wall-clock
ratios vs the recorded dev-machine baseline are informational; the
*enforced* regression guards are machine-independent: the reshare
(solver-invocation) count must not exceed the pre-PR-2 count, and
``t_predicted`` must match the baseline exactly.
"""

import json
import pathlib
import time

import pytest
from conftest import append_bench_record, emit

from repro.analysis import format_table
from repro.scenarios import SCENARIOS, SweepRunner, expand_grid, ScenarioSpec
from repro.scenarios.runner import clear_memo, run_scenario
from repro.scenarios.spec import PlatformPlan, WorkloadPlan


def tiny_grid():
    base = ScenarioSpec(
        name="bench-tiny", kind="predict",
        platform=PlatformPlan(kind="cluster", n_hosts=4),
        workload=WorkloadPlan(app="heat", n=64, nit=30, level="O1"),
        n_peers=2,
    )
    return expand_grid(base, {"n_peers": (2, 4),
                              "workload.level": ("O0", "O1", "O3")})


def test_sweep_cache_overhead(benchmark, tmp_path):
    specs = tiny_grid()
    warm = SweepRunner(cache_dir=tmp_path)
    results = warm.run(specs, parallel=False)  # populate memo + disk

    def cached_sweep():
        runner = SweepRunner(cache_dir=tmp_path)
        return runner.run(specs, parallel=False)

    again = benchmark(cached_sweep)
    assert [r.spec_hash for r in again] == [r.spec_hash for r in results]

    clear_memo()
    disk = SweepRunner(cache_dir=tmp_path)
    disk.run(specs, parallel=False)

    print(format_table(
        ["stage", "points", "served from cache"],
        [["cold sweep", str(len(specs)), "0"],
         ["warm memo", str(len(specs)), str(len(specs))],
         ["cold memo, disk cache", str(len(specs)), str(disk.hits)]],
    ))
    append_bench_record("scenario_engine", {
        "points": len(specs),
        "disk_hits": disk.hits,
        "warm_sweep_s": round(benchmark.stats.stats.min, 4),
    })
    assert disk.hits == len(specs)


# ---------------------------------------------------------------------------
# recovery-grid cost tracking
# ---------------------------------------------------------------------------

def test_recovery_grid_smoke():
    """One representative point per recovery regime, timed — so the
    cost of the churn recovery subsystem (liveness pings, re-dispatch,
    catch-up recompute) is tracked from day one.  The full 18-point
    grid is the registered scenario; this smoke covers the regimes
    without paying the whole grid in CI.
    """
    base = SCENARIOS["recovery-grid"].base
    cases = [
        ("baseline (no churn)",
         base.with_override("churn_profile.rate", 0.0)),
        ("churn, no recovery",
         base),
        ("churn + recovery",
         base.with_override("churn_profile.rejoin_rate", 2.0)),
    ]
    rows = []
    for label, spec in cases:
        t0 = time.perf_counter()
        result = run_scenario(spec)
        wall = time.perf_counter() - t0
        rows.append([
            label, f"{wall:.2f}", f"{result.t:.2f}",
            f"{result.metrics['completed']:.0f}",
            f"{result.metrics['redispatched_subtasks']:.0f}",
            f"{result.metrics['sim_events']:.0f}",
        ])
    print(format_table(
        ["regime", "wall [s]", "sim t [s]", "completed",
         "re-dispatched", "sim events"],
        rows,
    ))
    append_bench_record("recovery_grid_smoke", {
        "regimes": [
            {"regime": r[0], "wall_s": float(r[1]), "sim_t_s": float(r[2]),
             "completed": int(r[3]), "redispatched": int(r[4]),
             "sim_events": int(r[5])}
            for r in rows
        ],
    })
    # the recovery point must actually recover: completed, with work
    # re-dispatched — otherwise this bench times the wrong thing
    assert rows[1][3] == "0" and rows[2][3] == "1"
    assert int(rows[2][4]) > 0


def test_coordinator_grid_smoke():
    """One representative point per coordinator-recovery regime, timed
    — so the cost of the election subsystem (CoordPing probes, duty
    checkpoints, hand-offs, gap re-dispatch) is tracked from day one.
    The full 18-point grid is the registered scenario; this smoke
    covers the regimes without paying the whole grid in CI.
    """
    base = SCENARIOS["coordinator-grid"].base
    hot = base.with_override("churn_profile.coordinator_churn_rate", 1.5)
    cases = [
        ("baseline (no churn)", base),
        ("coordinator churn, no election",
         hot.with_override("recovery.election", False)),
        ("coordinator churn + election", hot),
    ]
    rows = []
    for label, spec in cases:
        t0 = time.perf_counter()
        result = run_scenario(spec)
        wall = time.perf_counter() - t0
        rows.append([
            label, f"{wall:.2f}", f"{result.t:.2f}",
            f"{result.metrics['completed']:.0f}",
            f"{result.metrics['elections']:.0f}",
            f"{result.metrics.get('handoff_latency', 0.0):.1f}",
            f"{result.metrics['sim_events']:.0f}",
        ])
    print(format_table(
        ["regime", "wall [s]", "sim t [s]", "completed",
         "elections", "handoff lat [s]", "sim events"],
        rows,
    ))
    append_bench_record("coordinator_grid_smoke", {
        "regimes": [
            {"regime": r[0], "wall_s": float(r[1]), "sim_t_s": float(r[2]),
             "completed": int(r[3]), "elections": int(r[4]),
             "handoff_latency_s": float(r[5]), "sim_events": int(r[6])}
            for r in rows
        ],
    })
    # the election point must actually recover a coordinator crash:
    # completed, with at least one hand-off — otherwise this bench
    # times the wrong thing
    assert rows[1][3] == "0" and rows[2][3] == "1"
    assert int(rows[2][4]) > 0


def test_prediction_grid_smoke():
    """One representative point per prediction regime, timed — so the
    cost of prediction-guided selection (candidate enumeration, group
    scoring through the warm trace caches) is tracked from day one.
    The full 30-point grid is the registered scenario; this smoke
    covers the regimes without paying the whole grid in CI.
    """
    base = SCENARIOS["prediction-grid"].base
    cases = [
        ("predicted (zero error)",
         base.with_override("selection_policy", "predicted")),
        ("oracle",
         base.with_override("selection_policy", "oracle")),
        ("random (blind)",
         base.with_override("selection_policy", "random")),
        ("predicted, flip@1.0 (worst case)",
         base.with_override("selection_policy", "predicted")
             .with_override("prediction_error.kind", "flip")
             .with_override("prediction_error.level", 1.0)),
    ]
    rows = []
    for label, spec in cases:
        t0 = time.perf_counter()
        result = run_scenario(spec)
        wall = time.perf_counter() - t0
        rows.append([
            label, f"{wall:.2f}", f"{result.metrics['makespan']:.4f}",
            f"{result.metrics['completed']:.0f}",
            f"{result.metrics.get('prediction_candidates', 0.0):.0f}",
            f"{result.metrics['sim_events']:.0f}",
        ])
    print(format_table(
        ["regime", "wall [s]", "makespan [s]", "completed",
         "candidates", "sim events"],
        rows,
    ))
    append_bench_record("prediction_grid_smoke", {
        "regimes": [
            {"regime": r[0], "wall_s": float(r[1]), "makespan_s": float(r[2]),
             "completed": int(r[3]), "candidates": int(r[4]),
             "sim_events": int(r[5])}
            for r in rows
        ],
    })
    # the headline must hold or this bench times the wrong thing:
    # predicted strictly beats the blind policy at zero error and
    # matches the omniscient oracle on the uniform-latency platform
    assert float(rows[0][2]) < float(rows[2][2])
    assert float(rows[0][2]) == float(rows[1][2])
    assert int(rows[0][4]) > 0 and int(rows[2][4]) == 0


def test_partition_grid_smoke():
    """One representative point per lossy-network regime, timed — so
    the cost of the reliability hardening (envelopes, acks, retry
    timers, dedup sets) is tracked from day one.  The full 24-point
    grid is the registered scenario; this smoke covers the regimes
    without paying the whole grid in CI.
    """
    base = SCENARIOS["partition-grid"].base
    faulty = (base.with_override("fault_plan.loss", 0.05)
                  .with_override("fault_plan.partition_duration", 8.0))
    cases = [
        ("baseline (clean network)", base),
        ("loss + partition, hardened", faulty),
        ("loss + partition, unhardened",
         faulty.with_override("fault_plan.retries", False)),
    ]
    rows = []
    for label, spec in cases:
        t0 = time.perf_counter()
        result = run_scenario(spec)
        wall = time.perf_counter() - t0
        rows.append([
            label, f"{wall:.2f}", f"{result.t:.2f}",
            f"{result.metrics['completed']:.0f}",
            f"{result.metrics.get('messages_lost', 0.0):.0f}",
            f"{result.metrics.get('reliable_retries', 0.0):.0f}",
            f"{result.metrics['sim_events']:.0f}",
        ])
    print(format_table(
        ["regime", "wall [s]", "sim t [s]", "completed",
         "lost", "retries", "sim events"],
        rows,
    ))
    append_bench_record("partition_grid_smoke", {
        "regimes": [
            {"regime": r[0], "wall_s": float(r[1]), "sim_t_s": float(r[2]),
             "completed": int(r[3]), "messages_lost": int(r[4]),
             "reliable_retries": int(r[5]), "sim_events": int(r[6])}
            for r in rows
        ],
    })
    # the hardening contrast must hold or this bench times the wrong
    # thing: the hardened point completes through the faults, the
    # unhardened ablation does not
    assert rows[0][3] == "1" and rows[1][3] == "1" and rows[2][3] == "0"
    assert int(rows[1][5]) > 0 and int(rows[2][5]) == 0


# ---------------------------------------------------------------------------
# replay hot path (the churn-grid inner loop)
# ---------------------------------------------------------------------------

#: What the replay bench runs: the paper's obstacle target instance on
#: 16 spread peers — big enough that the fluid solver dominates.
REPLAY_CASE = dict(app="obstacle", nprocs=16, level="O0", n=1024, nit=400)
REPLAY_PLATFORMS = ("lan", "xdsl")
REPLAY_REPEATS = 3
BASELINE_PATH = pathlib.Path(__file__).parent / "BENCH_replay.json"


def _replay_once(kind: str):
    from repro.scenarios import platforms as P, workloads as W
    from repro.simx.replay import TraceReplayer

    plan = (PlatformPlan(kind="lan", n_hosts=1024) if kind == "lan"
            else PlatformPlan(kind="xdsl"))
    platform = P.build_platform(plan)
    hosts = P.pick_hosts(platform, REPLAY_CASE["nprocs"], "spread")
    traces = W.traces(REPLAY_CASE["app"], REPLAY_CASE["nprocs"],
                      REPLAY_CASE["level"], REPLAY_CASE["n"],
                      REPLAY_CASE["nit"])
    replayer = TraceReplayer(traces, platform, hosts=hosts)
    t0 = time.perf_counter()
    result = replayer.run()
    return time.perf_counter() - t0, result, replayer.net


def test_replay_hot_path():
    baseline = json.loads(BASELINE_PATH.read_text())
    rows = []
    for kind in REPLAY_PLATFORMS:
        walls = []
        for _ in range(REPLAY_REPEATS):
            wall, result, net = _replay_once(kind)
            walls.append(wall)
        best = min(walls)
        base = baseline["pre_pr2"][kind]
        rows.append([
            kind, f"{base['wall_s']:.3f}", f"{best:.3f}",
            f"{base['wall_s'] / best:.2f}x",
            str(net.reshare_count), str(base["reshares"]),
            f"{result.t_predicted:.4f}",
        ])
        # the replay rework must not move the prediction itself
        assert result.t_predicted == pytest.approx(
            base["t_predicted"], rel=1e-6
        )
        # machine-independent speedup guard: the optimized engine must
        # keep invoking the solver (far) less often than pre-PR-2 did
        assert net.reshare_count <= base["reshares"]
    emit("replay_hot_path", format_table(
        ["platform", "pre-PR2 [s]", "now [s]", "speedup",
         "reshares", "pre-PR2 reshares", "t_predicted [s]"],
        rows,
    ))
