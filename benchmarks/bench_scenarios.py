"""S1 — scenario-engine smoke benchmark.

One tiny sweep through the cached parallel runner: measures the
engine's own overhead (spec hashing, memo, disk cache, result
serialization) against a warm in-process memo, and regenerates a
small results table. Fast by construction — this is the bench CI runs
on every push.
"""

from conftest import emit

from repro.analysis import format_table
from repro.scenarios import SweepRunner, expand_grid, ScenarioSpec
from repro.scenarios.runner import clear_memo
from repro.scenarios.spec import PlatformPlan, WorkloadPlan


def tiny_grid():
    base = ScenarioSpec(
        name="bench-tiny", kind="predict",
        platform=PlatformPlan(kind="cluster", n_hosts=4),
        workload=WorkloadPlan(app="heat", n=64, nit=30, level="O1"),
        n_peers=2,
    )
    return expand_grid(base, {"n_peers": (2, 4),
                              "workload.level": ("O0", "O1", "O3")})


def test_sweep_cache_overhead(benchmark, tmp_path):
    specs = tiny_grid()
    warm = SweepRunner(cache_dir=tmp_path)
    results = warm.run(specs, parallel=False)  # populate memo + disk

    def cached_sweep():
        runner = SweepRunner(cache_dir=tmp_path)
        return runner.run(specs, parallel=False)

    again = benchmark(cached_sweep)
    assert [r.spec_hash for r in again] == [r.spec_hash for r in results]

    clear_memo()
    disk = SweepRunner(cache_dir=tmp_path)
    disk.run(specs, parallel=False)

    emit("scenario_engine", format_table(
        ["stage", "points", "served from cache"],
        [["cold sweep", str(len(specs)), "0"],
         ["warm memo", str(len(specs)), str(len(specs))],
         ["cold memo, disk cache", str(len(specs)), str(disk.hits)]],
    ))
    assert disk.hits == len(specs)
