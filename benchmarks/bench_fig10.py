"""Fig. 10 — Stage-1 reference vs dPerf prediction (GCC level 3).

Paper: "the reference time and the prediction calculated with dPerf
are very close" — the two curves nearly coincide at every peer count.
"""

from conftest import emit

from repro.analysis import format_series
from repro.experiments import Stage1Config, run_stage1


def test_fig10_prediction_vs_reference(benchmark):
    config = Stage1Config()  # shares the cached full Stage-1 run

    result = benchmark.pedantic(run_stage1, args=(config,),
                                rounds=1, iterations=1)

    ref = result.reference_series("O3")
    pred = result.predicted_series("O3")
    emit("fig10", format_series(
        "Fig. 10 — reference vs dPerf prediction, GCC O3 [s]",
        "number of peers",
        {"reference time": ref, "prediction with dPerf": pred},
    ) + f"\n\naccuracy: {result.accuracy('O3')}")

    # the paper's claim: accurate at every point (we require < 5%)
    report = result.accuracy("O3")
    assert report.mape < 0.05
    assert report.max_abs_pct < 0.10
    # accurate at all levels, not only O3 (paper: "prediction is
    # accurate at all optimization levels")
    for lvl in config.levels:
        assert result.accuracy(lvl).mape < 0.05
