"""Fig. 9 — Stage-1 reference execution time for all optimization levels.

Paper: obstacle problem under P2PDC on the Bordeplage cluster; 2, 4,
8, 16, 32 peers; GCC levels 0/1/2/3/s.  Expected shape: strong scaling
in the peer count, O0 ≈ 40 s at 2 peers far above the tight
O1/O2/O3/Os cluster.
"""

from conftest import emit

from repro.analysis import format_series
from repro.experiments import Stage1Config, run_stage1


def test_fig9_reference_all_levels(benchmark):
    config = Stage1Config()  # full: 5 peer counts × 5 levels

    result = benchmark.pedantic(run_stage1, args=(config,),
                                rounds=1, iterations=1)

    series = {
        f"optimization level {lvl[1:]}": result.reference_series(lvl)
        for lvl in config.levels
    }
    emit("fig9", format_series(
        "Fig. 9 — Stage-1 reference execution time t_normal_execution [s]",
        "number of peers", series,
    ))

    # shape assertions: strong scaling + the level family ordering
    o0 = result.reference_series("O0")
    assert o0[2] > o0[4] > o0[8] > o0[16] > o0[32]
    assert 30.0 < o0[2] < 50.0  # paper ≈ 42 s
    for n in config.peer_counts:
        cluster = [result.reference[(n, lvl)] for lvl in ("O1", "O2", "Os")]
        assert result.reference[(n, "O0")] > 1.8 * max(cluster)
        assert result.reference[(n, "O3")] <= min(cluster) * 1.05
