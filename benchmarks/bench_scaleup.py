"""Future work (paper §V): scale prediction beyond the paper's 32 peers.

"Another near-future goal is to be able to supply application
prediction with P2PDC for a few hundreds up to a few thousand machines
by scaling-up static analysis obtained with dPerf."  The block-
benchmark representation makes that cheap: one small calibration
execution per rank count, then analytic scaling and a replay whose
cost grows only with the number of communication events.
"""

from conftest import emit

from repro.analysis import format_table
from repro.apps import obstacle
from repro.dperf import DPerfPredictor, ScalePlan
from repro.experiments import calibration as C
from repro.platforms import build_cluster, build_lan

PEER_COUNTS = (32, 64, 128)
#: a 100-iteration slice of the target instance: prediction cost grows
#: with communication events, and the scaling *ratios* the assertions
#: check are iteration-count-invariant.
TARGET_N, NIT = 1024, 100
#: checks every 5 iterations here (vs 10 in the main experiments):
#: halves the calibration cost, which matters at 128 ranks.
CHECK = 5


def predict_large(nprocs: int):
    predictor = DPerfPredictor(obstacle.obstacle_source(), obstacle.ENTRY)
    cal_n = max(32, nprocs)  # rows ≥ 1 in the calibration instance
    runs = predictor.execute(nprocs, args=[cal_n, 2 * CHECK, CHECK],
                             timeout=600.0)
    plan = ScalePlan(
        env_cal=obstacle.scale_env(cal_n, nprocs),
        env_target=obstacle.scale_env(TARGET_N, nprocs),
        nit_target=NIT, cycle_len=CHECK, warmup_cycles=1,
    )
    traces = predictor.traces_for(runs, "O0", scale=plan, app="obstacle")
    cluster = build_cluster(nprocs + 1)
    lan = build_lan(max(nprocs, 2))
    t_cluster = predictor.predict(
        traces, cluster, hosts=cluster.take_hosts(nprocs)).t_predicted
    t_lan = predictor.predict(
        traces, lan, hosts=lan.take_hosts(nprocs)).t_predicted
    events = sum(len(t.events) for t in traces)
    return t_cluster, t_lan, events


def run_sweep():
    return [(n, *predict_large(n)) for n in PEER_COUNTS]


def test_scaleup_beyond_paper(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    emit("scaleup", format_table(
        ["peers", "t_pred cluster [s]", "t_pred LAN [s]", "trace events"],
        [[n, f"{tc:.3f}", f"{tl:.3f}", ev] for n, tc, tl, ev in rows],
    ))

    by_n = {n: (tc, tl) for n, tc, tl, _ev in rows}
    # the cluster keeps scaling to 128 peers…
    assert by_n[128][0] < by_n[64][0] < by_n[32][0]
    # …while LAN efficiency collapses: 4× peers buy < 2.5× speedup
    assert by_n[32][1] / by_n[128][1] < 2.5
    # LAN overhead grows with the peer count
    overhead_32 = by_n[32][1] / by_n[32][0]
    overhead_128 = by_n[128][1] / by_n[128][0]
    assert overhead_128 > overhead_32
