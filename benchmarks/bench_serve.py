"""S3 — serve-daemon benchmark: query throughput, cold vs memoized.

Starts a real daemon on a loopback socket, prices a 50-query batch
cold (every answer simulated), then replays the same batch memoized
(every answer from the LRU memo).  Enforced, machine-independent:

- the memoized replay must be **byte-identical** to the cold pass
  (the determinism contract the serve test harness pins in depth);
- memoized-answer throughput must be **>= 10x** the cold rate — the
  whole point of a long-lived daemon over re-running sweeps.

The queries/s figures land in ``benchmarks/BENCH_reference.json``
under the ``serve`` section (CI uploads it), giving the serving tier
the same machine-readable perf trajectory the reference path has.
"""

import json
import time

from conftest import append_bench_record

from repro.serve import QueryEngine, ServeClient, ServeDaemon

QUERIES = 50
MIN_MEMO_SPEEDUP = 10.0


def _query_payloads():
    """50 distinct tiny queries: a deadline axis (pure memo-key
    variety — same seed pool) crossed with a small workload axis."""
    payloads = []
    for i in range(QUERIES):
        payloads.append({
            "deadline": 0.5 + 0.01 * i,
            "percentile": 90.0,
            "pool": 3,
            "n_peers": 2,
            "workload": {"app": "heat", "n": 64, "nit": 20 + 5 * (i % 4),
                         "level": "O1"},
            "platform": {"kind": "cluster", "n_hosts": 8},
        })
    return payloads


def test_serve_throughput(tmp_path):
    engine = QueryEngine(cache_dir=tmp_path / "cache")
    payloads = _query_payloads()
    with ServeDaemon(engine, address="127.0.0.1:0") as daemon:
        with ServeClient(daemon.address, timeout=120.0) as client:
            t0 = time.perf_counter()
            cold = client.request({"op": "batch", "queries": payloads})
            cold_wall = time.perf_counter() - t0
            assert cold["ok"], cold
            t0 = time.perf_counter()
            warm = client.request({"op": "batch", "queries": payloads})
            warm_wall = time.perf_counter() - t0
            assert warm["ok"], warm
            stats = client.request({"op": "stats"})["stats"]

    assert json.dumps(cold["answers"], sort_keys=True) == \
        json.dumps(warm["answers"], sort_keys=True), \
        "memoized replay drifted from the cold answers"
    # every replayed query must be a memo hit: zero new simulations
    assert stats["scenario_runs"] == engine.stats.get("scenario_runs")
    assert stats["memo_hits"] >= QUERIES

    cold_qps = QUERIES / cold_wall
    warm_qps = QUERIES / warm_wall
    speedup = warm_qps / cold_qps
    print(f"cold: {QUERIES} queries in {cold_wall:.3f}s "
          f"({cold_qps:.0f} q/s)")
    print(f"memoized: {QUERIES} queries in {warm_wall:.3f}s "
          f"({warm_qps:.0f} q/s, {speedup:.0f}x)")
    assert speedup >= MIN_MEMO_SPEEDUP, (
        f"memoized serving is only {speedup:.1f}x the cold rate "
        f"(floor {MIN_MEMO_SPEEDUP}x) — the answer memo is not "
        f"carrying the hot path"
    )
    append_bench_record(
        "serve_throughput",
        {
            "queries": QUERIES,
            "cold_wall_s": round(cold_wall, 4),
            "cold_qps": round(cold_qps, 1),
            "memoized_wall_s": round(warm_wall, 4),
            "memoized_qps": round(warm_qps, 1),
            "memo_speedup": round(speedup, 1),
        },
        section="serve",
    )
