"""S2 — reference-path benchmark: the churn grids' execution cost.

``test_reference_grids`` executes every point of the two recovery
grids serially (the churn-grid inner loop every sweep pays) against
the recorded pre-PR-5 baseline in ``benchmarks/BENCH_reference.json``
(tuple agenda + reschedule + lazy compaction, reshare solve cache,
deployment template cache and the persistent trace cache landed at
≥2× on the end-to-end sweep there).  Wall-clock ratios vs the
recorded dev-machine baseline are informational; the *enforced*
regression guard is machine-independent: the total ``sim_events``
over each grid must equal the recorded value exactly — the fast core
must never change which events execute.

``test_shard_merge_smoke`` runs a tiny sweep as two shards through
the real CLI and asserts the merged manifest is byte-identical to the
unsharded one — the cross-machine workflow of docs/sharding.md in
miniature.
"""

import json
import pathlib
import time

from conftest import append_bench_record

from repro.analysis import format_table
from repro.scenarios import SCENARIOS
from repro.scenarios.runner import run_scenario

BASELINE_PATH = pathlib.Path(__file__).parent / "BENCH_reference.json"
GRIDS = ("coordinator-grid", "recovery-grid")


def test_reference_grids():
    baseline = json.loads(BASELINE_PATH.read_text())
    rows = []
    record = {}
    for grid in GRIDS:
        specs = SCENARIOS[grid].points()
        run_scenario(specs[0])  # warm the workload calibration
        t0 = time.perf_counter()
        results = [run_scenario(spec) for spec in specs]
        wall = time.perf_counter() - t0
        events = int(sum(r.metrics.get("sim_events", 0) for r in results))
        pre = baseline["pre_pr5"][grid]
        post = baseline["post_pr5"][grid]
        rows.append([
            grid, str(len(specs)),
            f"{pre['reference_wall_s']:.2f}", f"{wall:.2f}",
            f"{pre['reference_wall_s'] / wall:.2f}x",
            f"{pre['sweep_wall_s'] / post['sweep_wall_s']:.2f}x",
            str(events),
        ])
        record[grid] = {"wall_s": round(wall, 3), "sim_events": events}
        # the machine-independent contract: the fast core must not
        # change which events execute
        assert events == pre["sim_events_total"], (
            f"{grid}: sim_events drifted from the recorded baseline "
            f"({events} != {pre['sim_events_total']}) — the reference "
            f"fast core changed simulation behaviour"
        )
        assert events == post["sim_events_total"]
    print(format_table(
        ["grid", "points", "pre-PR5 [s]", "now [s]", "speedup",
         "sweep speedup (recorded)", "sim events"],
        rows,
    ))
    append_bench_record("reference_grids", record)


def test_shard_merge_smoke(tmp_path):
    from repro.scenarios.cli import main

    sets = [
        "--set", "workload.app=heat", "--set", "workload.n=64",
        "--set", "workload.nit=30", "--set", "workload.level=O0,O1",
        "--set", "n_peers=2,4",
    ]
    plain = tmp_path / "plain"
    sharded = tmp_path / "sharded"
    assert main(["sweep", "fig10-cluster-o3", "--serial", "--label", "tiny",
                 "--cache-dir", str(plain)] + sets) == 0
    for shard in ("0/2", "1/2"):
        assert main(["sweep", "fig10-cluster-o3", "--serial",
                     "--label", "tiny", "--cache-dir", str(sharded),
                     "--shard", shard] + sets) == 0
    assert main(["merge-shards", "tiny", "--cache-dir", str(sharded)]) == 0
    merged = (sharded / "sweeps" / "tiny.json").read_bytes()
    unsharded = (plain / "sweeps" / "tiny.json").read_bytes()
    assert merged == unsharded, "merged shard manifest is not byte-identical"
