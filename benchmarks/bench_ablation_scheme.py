"""Ablation A5 — synchronous vs asynchronous iterative schemes.

P2PSAP exists because the computation scheme should drive the
transport (paper §I).  The classic trade-off for iterative methods:

* synchronous iterations need fewer sweeps but pay, every iteration,
  for the *slowest* peer (jitter compounds through halo waits);
* asynchronous iterations need ~25% more sweeps (slower convergence)
  but never wait — stale halos are fine, P2PSAP's drop-stale mode
  delivers the freshest iterate.

We run the same workload under both schemes at increasing timing
jitter: synchronous wins on quiet machines, asynchronous wins once
per-iteration noise is real — the crossover that motivates a
*self-adaptive* protocol.
"""

from conftest import emit

from repro.analysis import format_table
from repro.p2psap import Scheme
from repro.p2pdc import TaskSpec, WorkloadSpec, deploy_overlay
from repro.platforms import build_cluster

N_PEERS = 16
NIT = 80
NOISE_LEVELS = (0.0, 0.1, 0.3)


def makespan(scheme: Scheme, noise: float, seed: int) -> float:
    platform = build_cluster(N_PEERS + 1)
    dep = deploy_overlay(platform, n_peers=N_PEERS, n_zones=2, seed=seed)
    workload = WorkloadSpec(
        name=f"scheme-{scheme.value}-{noise}",
        nit=NIT,
        halo_bytes=8192,
        iteration_time=lambda r, n: 0.010,
        check_every=0,  # pure scheme comparison: no global sync points
        scheme=scheme,
        noise_frac=noise,
        async_penalty=1.25,
    )
    sig = dep.submitter.submit(TaskSpec(workload=workload, n_peers=N_PEERS,
                                        spares=0))
    dep.overlay.run_until(sig, limit=1e6)
    outcome = sig.value
    assert outcome.ok, outcome.reason
    return outcome.timings.completed_at - outcome.timings.compute_started_at


def run_sweep():
    rows = []
    for noise in NOISE_LEVELS:
        sync = makespan(Scheme.SYNC, noise, seed=5)
        async_ = makespan(Scheme.ASYNC, noise, seed=5)
        rows.append((noise, sync, async_, sync / async_))
    return rows


def test_ablation_sync_vs_async_scheme(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    emit("ablation_scheme", format_table(
        ["iteration jitter", "synchronous [s]", "asynchronous [s]",
         "sync/async"],
        [[f"{z * 100:.0f}%", f"{s:.3f}", f"{a:.3f}", f"{r:.2f}"]
         for z, s, a, r in rows],
    ))

    quiet, noisy = rows[0], rows[-1]
    # on a quiet machine the synchronous scheme wins (fewer sweeps)
    assert quiet[1] < quiet[2]
    # under jitter the asynchronous scheme closes the gap and crosses
    # over — the reason P2PSAP adapts the stack to the scheme
    assert noisy[3] > quiet[3] * 1.1
    assert noisy[3] > 1.0, "async should win under heavy jitter"
