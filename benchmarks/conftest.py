"""Shared helpers for the benchmark harness.

Every bench regenerates one paper table/figure.  The paper-style data
tables are printed to stdout *and* written under
``benchmarks/results/`` so they survive pytest's output capture.

Scenario-engine smoke timings additionally land in
``benchmarks/BENCH_reference.json`` (see :func:`append_bench_record`):
one machine-readable perf-trajectory file across PRs instead of loose
``.txt`` files.
"""

import json
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BENCH_REFERENCE = pathlib.Path(__file__).parent / "BENCH_reference.json"

#: Keep the per-run smoke trajectory bounded: benches run on every
#: push, and the recorded pre/post sections are the durable history.
MAX_SMOKE_RECORDS = 50


def emit(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n===== {name} =====\n{text}\n")


def append_bench_record(name: str, record: dict,
                        section: str = "smoke") -> None:
    """Append one timing record to a section of
    ``BENCH_reference.json`` (default ``smoke``; the serve-daemon
    bench records under ``serve``), so the perf trajectory of the
    scenario-engine smokes is machine-readable across PRs instead of
    scattered over ``results/*.txt``.  The write is atomic (readers
    never see a torn file); concurrent appenders are last-writer-wins
    — benches run sequentially in CI, so that race does not arise."""
    from repro.scenarios.runner import atomic_write_text

    try:
        payload = json.loads(BENCH_REFERENCE.read_text())
    except (OSError, ValueError):
        payload = {}
    smoke = payload.setdefault(section, {})
    runs = smoke.setdefault(name, [])
    runs.append(record)
    del runs[:-MAX_SMOKE_RECORDS]
    atomic_write_text(BENCH_REFERENCE,
                      json.dumps(payload, indent=1, sort_keys=True) + "\n")
    print(f"\n===== {name} -> BENCH_reference.json =====\n"
          f"{json.dumps(record, sort_keys=True)}\n")
