"""Shared helpers for the benchmark harness.

Every bench regenerates one paper table/figure.  The paper-style data
tables are printed to stdout *and* written under
``benchmarks/results/`` so they survive pytest's output capture.
"""

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n===== {name} =====\n{text}\n")
