"""Table I — equivalent computing power in Grid5000.

Paper pairings with our measured verdicts, plus the general
equivalence search ("how many LAN/xDSL peers replace this cluster?").
"""

from conftest import emit

from repro.analysis import format_equivalence_table, format_table
from repro.experiments import PAPER_VERDICTS, Stage2Config, run_table1


def test_table1_equivalent_computing_power(benchmark):
    config = Stage2Config()

    result = benchmark.pedantic(run_table1, args=(config,),
                                rounds=1, iterations=1)

    table = format_equivalence_table(result.rows)
    side_by_side = format_table(
        ["pairing", "paper verdict", "our verdict", "ratio"],
        [
            [
                f"{r.candidate_peers} {r.candidate_platform} vs "
                f"{r.reference_peers} G5K",
                paper, r.verdict, f"{r.ratio:.2f}",
            ]
            for r, paper in zip(result.rows, result.paper_verdicts)
        ],
    )
    search = format_table(
        ["Grid5000 peers", "smallest matching LAN", "smallest matching xDSL"],
        [
            [n, result.lan_equivalents.get(n), result.xdsl_equivalents.get(n)]
            for n in sorted(result.lan_equivalents)
        ],
    )
    emit("table1", f"{table}\n\npaper vs measured:\n{side_by_side}\n\n"
                   f"equivalence search:\n{search}\n\n"
                   f"verdict agreement with the paper: "
                   f"{result.agreement() * 100:.0f}%")

    # row 1 (the xDSL row) must match the paper exactly
    assert result.rows[0].verdict == "slightly lower than"
    # LAN at equal peer count is never better than the cluster
    assert result.rows[1].ratio >= 1.0
    assert result.rows[2].verdict == "slightly lower than"
    # 4 xDSL is the smallest xDSL config matching 2 Grid5000
    assert result.xdsl_equivalents[2] == 4
