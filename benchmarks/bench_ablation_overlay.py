"""Ablation A4 — tracker-line maintenance cost vs overlay size.

The decentralization claim (§III-A): join and crash-repair touch only
the neighbour sets around the affected position, so the control
traffic per membership event stays O(|N|) — flat as the tracker count
grows — instead of scaling with the overlay like a centralized
directory would.

We count the protocol's own message types (join routing/welcome/
neighbour updates; repair notifications) rather than wall traffic, so
steady-state heartbeats don't pollute the measurement.
"""

from conftest import emit

from repro.analysis import format_table
from repro.p2pdc import deploy_overlay
from repro.platforms import build_cluster

TRACKER_COUNTS = (4, 8, 16)

_JOIN_TYPES = ("TrackerJoin", "TrackerWelcome", "NeighborAdd",
               "TrackerConnect")
_REPAIR_TYPES = ("NeighborsRepair", "TrackerDisconnect")


def _count(stats, types) -> int:
    return sum(stats.get(f"msg:{t}") for t in types)


def membership_cost(n_trackers: int):
    platform = build_cluster(4 * n_trackers)
    dep = deploy_overlay(platform, n_zones=n_trackers, with_submitter=False)
    overlay = dep.overlay

    # -- join cost ----------------------------------------------------------
    join_before = _count(overlay.stats, _JOIN_TYPES)
    newcomer = overlay.create_tracker(
        platform.hosts[1], f"10.{n_trackers // 2}.0.99", name="tracker-new"
    )
    newcomer.join_overlay([dep.trackers[0].ref])
    overlay.run(until=overlay.now + 30)
    join_msgs = _count(overlay.stats, _JOIN_TYPES) - join_before
    assert newcomer.joined

    # -- crash-repair cost ----------------------------------------------------
    victim = dep.trackers[n_trackers // 2]
    victim.crash()
    repair_before = _count(overlay.stats, _REPAIR_TYPES)
    overlay.run(until=overlay.now + 90)
    repair_msgs = _count(overlay.stats, _REPAIR_TYPES) - repair_before
    assert all(
        all(r.ip != victim.ip for r in t.neighbors)
        for t in overlay.live_trackers()
    ), "line not fully repaired"
    return join_msgs, repair_msgs


def run_sweep():
    return [(n, *membership_cost(n)) for n in TRACKER_COUNTS]


def test_ablation_overlay_maintenance(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    emit("ablation_overlay", format_table(
        ["trackers", "join protocol messages", "crash-repair messages"],
        [[n, j, r] for n, j, r in rows],
    ))

    # O(|N|), not O(trackers): quadrupling the overlay must not even
    # double the per-event traffic
    joins = [j for _n, j, _r in rows]
    repairs = [r for _n, _j, r in rows]
    assert joins[-1] < 2 * joins[0]
    assert repairs[-1] < 2 * max(repairs[0], 1)
    assert all(r > 0 for r in repairs), "repairs must actually happen"
