"""Ablation A3 — block-benchmark scale-up vs direct interpretation.

dPerf's block benchmarking lets "results be scaled-up while
maintaining accuracy" (§III-D2).  We quantify both halves of that
claim: the wall-clock speedup of generating a target-size trace by
scaling a small calibration run, and the compute-time error against a
trace obtained by actually executing the target size.
"""

import time

from conftest import emit

from repro.analysis import format_table
from repro.apps import obstacle
from repro.dperf import DPerfPredictor, ScalePlan

CAL_N, TARGET_NS = 16, (32, 64, 128)
NIT, CHECK = 20, 10


def run_comparison():
    predictor = DPerfPredictor(obstacle.obstacle_source(), obstacle.ENTRY)
    t0 = time.perf_counter()
    cal_runs = predictor.execute(2, args=[CAL_N, NIT, CHECK])
    cal_wall = time.perf_counter() - t0

    rows = []
    for n in TARGET_NS:
        plan = ScalePlan(
            env_cal=obstacle.scale_env(CAL_N, 2),
            env_target=obstacle.scale_env(n, 2),
            nit_target=NIT, cycle_len=CHECK, warmup_cycles=1,
        )
        t0 = time.perf_counter()
        scaled = predictor.traces_for(cal_runs, "O0", scale=plan)
        scale_wall = time.perf_counter() - t0

        t0 = time.perf_counter()
        direct_runs = predictor.execute(2, args=[n, NIT, CHECK])
        direct = predictor.traces_for(direct_runs, "O0")
        direct_wall = time.perf_counter() - t0

        err = abs(
            scaled[0].total_compute_ns - direct[0].total_compute_ns
        ) / direct[0].total_compute_ns
        rows.append((n, cal_wall + scale_wall, direct_wall, err))
    return rows


def test_ablation_blockbench_scaleup(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    emit("ablation_blockbench", format_table(
        ["target n", "scale-up wall [s]", "direct wall [s]",
         "compute-ns error"],
        [[n, f"{s:.2f}", f"{d:.2f}", f"{e * 100:.2f}%"]
         for n, s, d, e in rows],
    ))

    for n, _s, _d, err in rows:
        assert err < 0.10, f"scale-up error {err:.1%} at n={n}"
    # the bigger the target, the bigger the win
    biggest = rows[-1]
    assert biggest[1] < biggest[2], "scale-up not cheaper at largest n"
