"""Ablation A6 — block benchmarking vs statement-level instrumentation.

"An important feature of dPerf is the reduced slowdown due to the use
of block benchmarking techniques" (§III-D2).  We instrument the
obstacle kernel at both granularities, run both, and compare the
modeled probe overhead (two PAPI reads per instrumented-block
execution) and the information obtained: the aggregated computation
time must be the same — block benchmarking gives up nothing while
reading the counters far less often.
"""

from conftest import emit

from repro.analysis import format_table
from repro.apps import obstacle
from repro.dperf import (
    GccModel,
    REFERENCE_MACHINE,
    instrument,
    instrumentation_slowdown,
    materialize,
)
from repro.dperf.interp import run_distributed
from repro.dperf.minic import parse

N, NIT, CHECK = 24, 8, 4


def measure(granularity: str):
    program, table = instrument(parse(obstacle.obstacle_source()),
                                granularity=granularity)
    runs = run_distributed(program, obstacle.ENTRY, 2, args=[N, NIT, CHECK],
                           block_table=table)
    run = runs[0]
    events = materialize(run.entries, table, REFERENCE_MACHINE, GccModel("O0"))
    compute_ns = sum(e.ns for e in events if e.kind == "compute")
    slowdown = instrumentation_slowdown(run.block_exec_counts, compute_ns)
    probes = sum(run.block_exec_counts.values())
    return compute_ns, probes, slowdown, table.n_blocks


def run_comparison():
    return {g: measure(g) for g in ("block", "statement")}


def test_ablation_instrumentation_granularity(benchmark):
    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    rows = [
        [g, blocks, probes, f"{ns / 1e6:.3f}", f"{sd * 100:.2f}%"]
        for g, (ns, probes, sd, blocks) in results.items()
    ]
    emit("ablation_granularity", format_table(
        ["granularity", "static blocks", "probe executions",
         "measured compute [ms]", "modeled probe overhead"],
        rows,
    ) + "\n(absolute overhead percentages are inflated by the tiny "
        "calibration kernel; the block-vs-statement ratio is the claim)")

    blk = results["block"]
    stmt = results["statement"]
    # identical information: aggregated compute time matches (< 0.1%)
    assert abs(blk[0] - stmt[0]) / stmt[0] < 1e-3
    # far fewer counter reads → far lower slowdown (the paper's claim)
    assert blk[1] < stmt[1] / 2
    assert blk[2] < stmt[2] / 2
