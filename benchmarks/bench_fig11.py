"""Fig. 11 — reference vs predictions for Grid5000, xDSL and LAN (O0).

Paper: the same traces replayed on three platform descriptions.  The
xDSL desktop grid is far slower and degrades as peers are added ("the
necessary time to exchange data tends to increase ... with the number
of peers"), the LAN sits slightly above the cluster.
"""

from conftest import emit

from repro.analysis import format_series
from repro.experiments import Stage2Config, run_stage2


def test_fig11_three_platforms(benchmark):
    config = Stage2Config()  # full peer counts, level O0

    result = benchmark.pedantic(run_stage2, args=(config,),
                                rounds=1, iterations=1)

    emit("fig11", format_series(
        "Fig. 11 — reference vs predicted time, Grid5000 / xDSL / LAN, O0 [s]",
        "number of peers", result.series(),
    ))

    g5k = result.predicted["grid5000"]
    lan = result.predicted["lan"]
    xdsl = result.predicted["xdsl"]
    for n in config.peer_counts:
        # ordering: xDSL ≫ LAN ≥ Grid5000
        assert xdsl[n] > 1.3 * lan[n]
        assert lan[n] >= g5k[n] * 0.999
    # "the necessary time to exchange data tends to increase with the
    # number of peers, while the computation load per peer decreases":
    # exchange time ≈ t_xdsl − t_cluster (compute is platform-invariant)
    comm = {n: xdsl[n] - g5k[n] for n in config.peer_counts}
    assert comm[32] > comm[2]
    # scaling on xDSL is hopeless: 16× more peers buy < 3× speedup
    assert xdsl[2] / xdsl[32] < 3.0
    # reference (cluster) tracks the Grid5000 prediction
    for n in config.peer_counts:
        assert abs(result.reference[n] - g5k[n]) / result.reference[n] < 0.05
