"""S4 — fleet benchmark: work-stealing actually buys wall clock.

Runs the same 8-point churn grid twice from cold caches: once with a
single fleet worker, once with two.  Each point is heavy enough
(``workload.nit=400`` => ~0.5-1s of simulation) that compute dominates
the fixed per-worker costs (one Python subprocess start plus one
platform/trace warm-up each), so two stealing workers must finish
measurably faster than one.  Enforced, machine-independent:

- both runs **complete** (no poison, every point done);
- both workers in the 2-worker run **claim at least one point** — the
  steal happened, the second worker was not decorative;
- the 2-worker wall clock beats the 1-worker wall clock by at least
  ``MIN_STEAL_SPEEDUP`` (a modest floor: the fixed warm-up is paid
  per worker, so perfect 2x is not on the table at this grid size).
  The floor is only enforced when the host exposes >= 2 CPUs — on a
  single core two compute-bound workers cannot win, so there the
  bench still pins completion and the steal split, and records the
  walls, but skips the speedup assertion.

The wall clocks and speedup land in ``benchmarks/BENCH_reference.json``
under the ``fleet`` section (CI uploads it), alongside the serve and
reference trajectories.
"""

import os
import time
from pathlib import Path

import pytest
from conftest import append_bench_record

import repro
from repro.fleet import FleetDispatcher
from repro.scenarios import SCENARIOS, expand_grid
from repro.scenarios.runner import clear_memo

SCENARIO = "churn-grid"
#: 8 seeds x nit=400: ~0.5-1s of simulated churn per point.
GRID = {
    "workload.nit": (400,),
    "seed": (2011, 2012, 2013, 2014, 2015, 2016, 2017, 2018),
}
MIN_STEAL_SPEEDUP = 1.1


def _spawn_env():
    """Worker-subprocess env with the repo's src on PYTHONPATH, so the
    bench passes regardless of how pytest itself was launched."""
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_FLEET_FAULT", None)
    return env


def _run_fleet(cache_dir, workers):
    clear_memo()  # no in-process seeding: every point goes to a worker
    specs = expand_grid(SCENARIOS[SCENARIO].base, GRID)
    dispatcher = FleetDispatcher(
        specs, label=f"bench-{workers}w", scenario=SCENARIO,
        cache_dir=cache_dir, workers=workers, wall_timeout=300.0,
        spawn_env=_spawn_env(),
    )
    t0 = time.perf_counter()
    outcome = dispatcher.run()
    wall = time.perf_counter() - t0
    assert outcome.complete, outcome.poisoned
    assert outcome.cached == 0  # cold cache: all points computed
    return outcome, wall


def test_fleet_steal_speedup(tmp_path):
    one, one_wall = _run_fleet(tmp_path / "one", workers=1)
    two, two_wall = _run_fleet(tmp_path / "two", workers=2)

    stealers = {w: n for w, n in two.worker_points.items() if n > 0}
    assert len(stealers) == 2, two.worker_points  # both pulled weight

    speedup = one_wall / two_wall
    cores = len(os.sched_getaffinity(0))
    append_bench_record("fleet_steal", {
        "points": len(one.points),
        "cores": cores,
        "one_worker_s": round(one_wall, 3),
        "two_worker_s": round(two_wall, 3),
        "speedup": round(speedup, 3),
        "two_worker_split": stealers,
    }, section="fleet")
    if cores < 2:
        pytest.skip(f"single-CPU host ({cores} core): the steal "
                    f"speedup floor needs real parallelism")
    assert speedup >= MIN_STEAL_SPEEDUP, (
        f"2-worker fleet only {speedup:.2f}x faster than 1 worker "
        f"({two_wall:.1f}s vs {one_wall:.1f}s); want >= "
        f"{MIN_STEAL_SPEEDUP}x"
    )
