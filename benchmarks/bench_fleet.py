"""S4 — fleet benchmark: work-stealing actually buys wall clock.

Runs the same 8-point churn grid twice from cold caches: once with a
single fleet worker, once with two.  Each point is heavy enough
(``workload.nit=400`` => ~0.5-1s of simulation) that compute dominates
the fixed per-worker costs (one Python subprocess start plus one
platform/trace warm-up each), so two stealing workers must finish
measurably faster than one.  Enforced, machine-independent:

- both runs **complete** (no poison, every point done);
- both workers in the 2-worker run **claim at least one point** — the
  steal happened, the second worker was not decorative;
- the 2-worker wall clock beats the 1-worker wall clock by at least
  ``MIN_STEAL_SPEEDUP`` (a modest floor: the fixed warm-up is paid
  per worker, so perfect 2x is not on the table at this grid size).
  The floor is only enforced when the host exposes >= 2 CPUs — on a
  single core two compute-bound workers cannot win, so there the
  bench still pins completion and the steal split, and records the
  walls, but skips the speedup assertion.

A second bench pins the **store at scale**: against a 100k-record
index, one ``get_result`` through the offset sidecar must beat the
pre-sidecar full-scan lookup by at least ``MIN_INDEX_SPEEDUP`` — the
floor the "millions of records" store design is sold on.

The wall clocks and speedups land in
``benchmarks/BENCH_reference.json`` under the ``fleet`` section (CI
uploads it), alongside the serve and reference trajectories.
"""

import json
import os
import time
from pathlib import Path

import pytest
from conftest import append_bench_record

import repro
from repro.fleet import FleetDispatcher, ResultStore
from repro.scenarios import SCENARIOS, expand_grid
from repro.scenarios.runner import clear_memo, run_scenario
from repro.scenarios.spec import PlatformPlan, ScenarioSpec

SCENARIO = "churn-grid"
#: 8 seeds x nit=400: ~0.5-1s of simulated churn per point.
GRID = {
    "workload.nit": (400,),
    "seed": (2011, 2012, 2013, 2014, 2015, 2016, 2017, 2018),
}
MIN_STEAL_SPEEDUP = 1.1


def _spawn_env():
    """Worker-subprocess env with the repo's src on PYTHONPATH, so the
    bench passes regardless of how pytest itself was launched."""
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_FLEET_FAULT", None)
    return env


def _run_fleet(cache_dir, workers):
    clear_memo()  # no in-process seeding: every point goes to a worker
    specs = expand_grid(SCENARIOS[SCENARIO].base, GRID)
    dispatcher = FleetDispatcher(
        specs, label=f"bench-{workers}w", scenario=SCENARIO,
        cache_dir=cache_dir, workers=workers, wall_timeout=300.0,
        spawn_env=_spawn_env(),
    )
    t0 = time.perf_counter()
    outcome = dispatcher.run()
    wall = time.perf_counter() - t0
    assert outcome.complete, outcome.poisoned
    assert outcome.cached == 0  # cold cache: all points computed
    return outcome, wall


def test_fleet_steal_speedup(tmp_path):
    one, one_wall = _run_fleet(tmp_path / "one", workers=1)
    two, two_wall = _run_fleet(tmp_path / "two", workers=2)

    stealers = {w: n for w, n in two.worker_points.items() if n > 0}
    assert len(stealers) == 2, two.worker_points  # both pulled weight

    speedup = one_wall / two_wall
    cores = len(os.sched_getaffinity(0))
    append_bench_record("fleet_steal", {
        "points": len(one.points),
        "cores": cores,
        "one_worker_s": round(one_wall, 3),
        "two_worker_s": round(two_wall, 3),
        "speedup": round(speedup, 3),
        "two_worker_split": stealers,
    }, section="fleet")
    if cores < 2:
        pytest.skip(f"single-CPU host ({cores} core): the steal "
                    f"speedup floor needs real parallelism")
    assert speedup >= MIN_STEAL_SPEEDUP, (
        f"2-worker fleet only {speedup:.2f}x faster than 1 worker "
        f"({two_wall:.1f}s vs {one_wall:.1f}s); want >= "
        f"{MIN_STEAL_SPEEDUP}x"
    )


#: Store-scale bench: index size and the indexed-lookup floor.
N_RECORDS = 100_000
MIN_INDEX_SPEEDUP = 20.0


def test_store_indexed_lookup_speedup(tmp_path):
    """One seek through the offset sidecar vs the full-scan lookup,
    on a 100k-record index.

    The baseline is what ``get_result`` *used to be*: a streaming
    pass over the whole index per lookup.  The indexed path must beat
    it by ``MIN_INDEX_SPEEDUP`` at minimum (in practice it is orders
    of magnitude), and a cold store adopting the persisted sidecar
    must answer without any full rebuild.
    """
    spec = ScenarioSpec(
        name="bench-probe", kind="deploy", seed=1,
        platform=PlatformPlan(kind="cluster", n_hosts=8), n_peers=4,
    )
    result = run_scenario(spec).to_dict()
    store = ResultStore(tmp_path)
    # bulk-build the index: the write path is benched elsewhere — this
    # bench is about reading a store that is already big
    t0 = time.perf_counter()
    with open(store.index_path, "w") as fh:
        for i in range(N_RECORDS):
            fh.write(json.dumps({
                "spec_hash": f"{i:040x}", "name": f"p{i}",
                "label": f"l{i % 8}", "scenario": SCENARIO,
                "result": dict(result, t=float(i)),
            }, sort_keys=True, separators=(",", ":")) + "\n")
    build_s = time.perf_counter() - t0
    sample = [f"{i:040x}"
              for i in range(0, N_RECORDS, N_RECORDS // 32)]

    # the pre-sidecar baseline: one streaming pass per lookup
    t0 = time.perf_counter()
    hits = sum(1 for record in ResultStore(tmp_path).entries()
               if record["spec_hash"] == sample[-1])
    scan_s = time.perf_counter() - t0
    assert hits == 1

    indexed = ResultStore(tmp_path)
    t0 = time.perf_counter()
    assert indexed.get_result(sample[0]) is not None
    rebuild_s = time.perf_counter() - t0  # one scan, then persisted
    t0 = time.perf_counter()
    for spec_hash in sample:
        assert indexed.get_result(spec_hash) is not None
    lookup_s = (time.perf_counter() - t0) / len(sample)

    # a cold open adopts the persisted sidecar: no rebuild, one seek
    cold = ResultStore(tmp_path)
    t0 = time.perf_counter()
    assert cold.get_result(sample[1]) is not None
    cold_lookup_s = time.perf_counter() - t0
    assert cold.sidecar_rebuilds == 0

    speedup = scan_s / lookup_s
    append_bench_record("store_lookup", {
        "records": N_RECORDS,
        "index_bytes": store.index_path.stat().st_size,
        "build_s": round(build_s, 3),
        "full_scan_lookup_s": round(scan_s, 4),
        "sidecar_rebuild_s": round(rebuild_s, 3),
        "indexed_lookup_s": round(lookup_s, 6),
        "cold_adopt_lookup_s": round(cold_lookup_s, 6),
        "speedup": round(speedup, 1),
    }, section="fleet")
    assert speedup >= MIN_INDEX_SPEEDUP, (
        f"indexed lookup only {speedup:.1f}x faster than a full scan "
        f"({lookup_s * 1e6:.0f}us vs {scan_s:.3f}s); want >= "
        f"{MIN_INDEX_SPEEDUP}x on {N_RECORDS} records"
    )
