"""Ablation A2 — proximity grouping vs random grouping (paper §III-A/C).

"peers grouping is based on proximity, hence communication between
coordinator and peers is faster".  We measure exactly that: the time
for each coordinator to push a subtask payload to every member of its
group, with the paper's IP-proximity grouping vs a randomized control.

Platform: a multi-site grid (LAN islands behind shared WAN uplinks) —
the setting where grouping matters.  Proximity groups stay inside one
site; random groups constantly cross the 34 Mbps/10 ms uplinks and
contend on them.
"""

import random

from conftest import emit

from repro.analysis import format_table
from repro.desim import AllOf, Simulator
from repro.net import FluidNetwork
from repro.p2pdc import group_by_proximity, group_randomly, pick_coordinator
from repro.p2pdc.messages import NodeRef
from repro.p2pdc.ip import IPv4
from repro.platforms import build_multisite

SUBTASK_BYTES = 262144  # 256 kB of subtask data per peer
N_SITES = 4
PEERS_PER_SITE = 8
CMAX = PEERS_PER_SITE


def build_setup():
    platform = build_multisite(n_sites=N_SITES, peers_per_site=PEERS_PER_SITE)
    hosts = platform.hosts
    # one /16 per site: IP proximity mirrors physical locality
    refs = [
        NodeRef(h.name, IPv4.parse(f"10.{i // PEERS_PER_SITE}"
                                   f".0.{i % PEERS_PER_SITE + 2}"), h.name)
        for i, h in enumerate(hosts)
    ]
    host_of = {h.name: h for h in hosts}
    return platform, refs, host_of


def dispatch_makespan(platform, groups, host_of) -> float:
    """Simulated time for all coordinators to send one subtask to every
    group member, in parallel (the hierarchical dispatch phase)."""
    sim = Simulator()
    net = FluidNetwork(sim, platform.topology)
    sigs = []
    for group in groups:
        coord = pick_coordinator(group)
        for ref in group:
            if ref.name != coord.name:
                sigs.append(
                    net.send(host_of[coord.name], host_of[ref.name],
                             SUBTASK_BYTES)
                )
    sim.run_until_triggered(AllOf(sigs), limit=1e5)
    return sim.now


def run_comparison():
    platform, refs, host_of = build_setup()
    prox = dispatch_makespan(platform, group_by_proximity(refs, CMAX), host_of)
    rng = random.Random(42)
    rand_times = [
        dispatch_makespan(platform, group_randomly(refs, CMAX, rng), host_of)
        for _ in range(5)
    ]
    return prox, sum(rand_times) / len(rand_times)


def test_ablation_proximity_vs_random_grouping(benchmark):
    prox, rand = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    emit("ablation_grouping", format_table(
        ["grouping", "coordinator→peers dispatch [s]"],
        [["proximity (paper)", f"{prox:.3f}"],
         ["random (control)", f"{rand:.3f}"],
         ["speedup", f"{rand / prox:.2f}x"]],
    ))

    # proximity grouping keeps coordinator↔peer traffic inside a site →
    # markedly faster dispatch than random groups crossing the WAN
    assert prox < rand * 0.75
